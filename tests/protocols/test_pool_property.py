"""Property tests for pool-zone invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocols.ntp.pool import NTPPool, POOL_DOMAIN, PoolMember

_country = st.sampled_from(["uk", "de", "fr", "us", "jp", "au", "br", "za"])
_region = st.sampled_from(
    ["europe", "north-america", "asia", "australia", "south-america", "africa"]
)


@st.composite
def pools(draw):
    count = draw(st.integers(1, 40))
    pool = NTPPool()
    for index in range(count):
        pool.add(
            PoolMember(
                hostname=f"ntp-{index}",
                addr=1000 + index,
                country_code=draw(_country),
                region=draw(_region),
            )
        )
    return pool


@settings(max_examples=50, deadline=None)
@given(pools())
def test_every_member_in_global_zone(pool):
    global_members = pool.zone_members(POOL_DOMAIN)
    assert {m.addr for m in global_members} == {m.addr for m in pool.members()}


@settings(max_examples=50, deadline=None)
@given(pools())
def test_zone_names_cover_every_member_zone(pool):
    names = set(pool.zone_names())
    for member in pool.members():
        assert set(member.zones) <= names


@settings(max_examples=50, deadline=None)
@given(pools())
def test_country_zone_members_share_the_country(pool):
    for zone in pool.zone_names():
        label = zone.split(".")[0]
        if len(label) == 2:  # country zone
            for member in pool.zone_members(zone):
                assert member.country_code == label


@settings(max_examples=30, deadline=None)
@given(pools(), st.integers(0, 100), st.floats(0.0, 1.0))
def test_churn_partitions_membership(pool, seed, probability):
    before = {m.addr for m in pool.members()}
    departed = pool.apply_churn(random.Random(seed), probability)
    departed_addrs = {m.addr for m in departed}
    remaining = {m.addr for m in pool.members()}
    assert departed_addrs | remaining == before
    assert not departed_addrs & remaining
