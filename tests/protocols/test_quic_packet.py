"""Tests for the minimal QUIC packet/frame codec."""

import pytest

from repro.netsim.errors import CodecError
from repro.protocols.quic.packet import (
    CLIENT_HELLO,
    SERVER_HELLO,
    TYPE_INITIAL,
    TYPE_ONE_RTT,
    AckEcnFrame,
    CryptoFrame,
    PingFrame,
    QUICPacket,
)


def initial(cid=7, pn=0):
    return QUICPacket(
        ptype=TYPE_INITIAL,
        cid=cid,
        packet_number=pn,
        frames=[CryptoFrame(CLIENT_HELLO)],
    )


class TestCodec:
    def test_initial_roundtrip(self):
        packet = initial()
        assert QUICPacket.decode(packet.encode()) == packet

    def test_one_rtt_roundtrip_with_all_frame_types(self):
        packet = QUICPacket(
            ptype=TYPE_ONE_RTT,
            cid=99,
            packet_number=12,
            frames=[
                PingFrame(),
                AckEcnFrame(
                    largest_acked=12,
                    acked_count=13,
                    ect0=11,
                    ect1=1,
                    ce=1,
                ),
                CryptoFrame(SERVER_HELLO),
            ],
        )
        assert QUICPacket.decode(packet.encode()) == packet

    def test_truncated_header_rejected(self):
        wire = initial().encode()
        with pytest.raises(CodecError):
            QUICPacket.decode(wire[:4])

    def test_truncated_frame_rejected(self):
        wire = QUICPacket(
            ptype=TYPE_ONE_RTT,
            cid=1,
            packet_number=1,
            frames=[AckEcnFrame(1, 1, 1, 0, 0)],
        ).encode()
        with pytest.raises(CodecError):
            QUICPacket.decode(wire[:-1])

    def test_unknown_packet_type_rejected(self):
        wire = bytearray(initial().encode())
        wire[0] = 0x7F
        with pytest.raises(CodecError):
            QUICPacket.decode(bytes(wire))

    def test_unknown_frame_type_rejected(self):
        packet = QUICPacket(ptype=TYPE_ONE_RTT, cid=1, packet_number=1, frames=[])
        wire = packet.encode() + b"\xee"
        with pytest.raises(CodecError):
            QUICPacket.decode(wire)


class TestAccessors:
    def test_first_ack_ecn(self):
        ack = AckEcnFrame(5, 6, 6, 0, 0)
        packet = QUICPacket(
            ptype=TYPE_ONE_RTT,
            cid=1,
            packet_number=2,
            frames=[PingFrame(), ack],
        )
        assert packet.first_ack_ecn() == ack
        assert initial().first_ack_ecn() is None

    def test_has_crypto(self):
        assert initial().has_crypto(CLIENT_HELLO)
        assert not initial().has_crypto(SERVER_HELLO)
