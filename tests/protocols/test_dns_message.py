"""Tests for the DNS message codec, including name compression."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netsim.errors import CodecError
from repro.protocols.dns.message import (
    DNSMessage,
    QTYPE_A,
    RCODE_NOERROR,
    RCODE_NXDOMAIN,
    ResourceRecord,
    decode_name,
    encode_name,
)


class TestNames:
    def test_simple_roundtrip(self):
        wire = encode_name("pool.ntp.org")
        name, offset = decode_name(wire, 0)
        assert name == "pool.ntp.org"
        assert offset == len(wire)

    def test_root_name(self):
        wire = encode_name("")
        assert wire == b"\x00"
        assert decode_name(wire, 0) == ("", 1)

    def test_case_normalised(self):
        assert encode_name("Pool.NTP.org") == encode_name("pool.ntp.org")

    def test_trailing_dot_ignored(self):
        assert encode_name("pool.ntp.org.") == encode_name("pool.ntp.org")

    def test_compression_pointer_reuses_suffix(self):
        offsets = {}
        first = encode_name("uk.pool.ntp.org", offsets, 0)
        second = encode_name("de.pool.ntp.org", offsets, len(first))
        # Second name: 'de' label (3 bytes) + 2-byte pointer.
        assert len(second) == 3 + 2
        wire = first + second
        assert decode_name(wire, 0)[0] == "uk.pool.ntp.org"
        assert decode_name(wire, len(first))[0] == "de.pool.ntp.org"

    def test_pointer_loop_detected(self):
        # A pointer pointing at itself.
        wire = b"\xc0\x00"
        with pytest.raises(CodecError):
            decode_name(wire, 0)

    def test_label_too_long_rejected(self):
        with pytest.raises(CodecError):
            encode_name("a" * 64 + ".org")

    def test_truncated_name_rejected(self):
        with pytest.raises(CodecError):
            decode_name(b"\x05ab", 0)


class TestMessages:
    def test_query_roundtrip(self):
        query = DNSMessage.query(0x1234, "pool.ntp.org")
        decoded = DNSMessage.decode(query.encode())
        assert decoded.ident == 0x1234
        assert not decoded.is_response
        assert decoded.questions[0].qname == "pool.ntp.org"
        assert decoded.questions[0].qtype == QTYPE_A

    def test_response_roundtrip_with_answers(self):
        query = DNSMessage.query(7, "pool.ntp.org")
        answers = [
            ResourceRecord("pool.ntp.org", QTYPE_A, 1, 150, address=0x3E010203),
            ResourceRecord("pool.ntp.org", QTYPE_A, 1, 150, address=0x3E010204),
        ]
        response = DNSMessage.response_to(query, answers)
        decoded = DNSMessage.decode(response.encode())
        assert decoded.is_response
        assert decoded.rcode == RCODE_NOERROR
        assert [r.address for r in decoded.answers] == [0x3E010203, 0x3E010204]
        assert decoded.questions[0].qname == "pool.ntp.org"

    def test_answer_names_compressed(self):
        query = DNSMessage.query(7, "pool.ntp.org")
        answers = [
            ResourceRecord("pool.ntp.org", QTYPE_A, 1, 150, address=i)
            for i in range(4)
        ]
        wire = DNSMessage.response_to(query, answers).encode()
        # Compression: each answer name is a 2-byte pointer, not 14 bytes.
        uncompressed_size = len(DNSMessage.query(7, "pool.ntp.org").encode()) + 4 * (
            14 + 14
        )
        assert len(wire) < uncompressed_size

    def test_nxdomain(self):
        query = DNSMessage.query(9, "no.such.zone")
        response = DNSMessage.response_to(query, [], rcode=RCODE_NXDOMAIN)
        assert DNSMessage.decode(response.encode()).rcode == RCODE_NXDOMAIN

    def test_truncated_header_rejected(self):
        with pytest.raises(CodecError):
            DNSMessage.decode(b"\x00" * 11)

    def test_bad_a_rdata_length_rejected(self):
        query = DNSMessage.query(7, "x.org")
        wire = bytearray(
            DNSMessage.response_to(
                query,
                [ResourceRecord("x.org", QTYPE_A, 1, 1, address=1)],
            ).encode()
        )
        # Corrupt the rdlength of the answer (last 6 bytes are len+rdata).
        wire[-5] = 3
        with pytest.raises(CodecError):
            DNSMessage.decode(bytes(wire))


_label = st.text(
    alphabet=st.sampled_from("abcdefghijklmnopqrstuvwxyz0123456789-"),
    min_size=1,
    max_size=20,
).filter(lambda s: not s.startswith("-"))


@given(st.lists(_label, min_size=1, max_size=5))
def test_name_roundtrip_property(labels):
    name = ".".join(labels)
    wire = encode_name(name)
    assert decode_name(wire, 0)[0] == name


@given(
    st.lists(st.lists(_label, min_size=2, max_size=4), min_size=1, max_size=6),
    st.integers(0, 0xFFFF),
)
def test_message_with_shared_suffixes_roundtrips(names_labels, ident):
    """Compression across many answers sharing suffixes roundtrips."""
    qname = "pool.ntp.org"
    query = DNSMessage.query(ident, qname)
    answers = [
        ResourceRecord(".".join(labels) + ".ntp.org", QTYPE_A, 1, 60, address=i)
        for i, labels in enumerate(names_labels)
    ]
    decoded = DNSMessage.decode(DNSMessage.response_to(query, answers).encode())
    assert [r.name for r in decoded.answers] == [a.name for a in answers]
    assert [r.address for r in decoded.answers] == [a.address for a in answers]
