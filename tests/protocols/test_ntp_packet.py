"""Tests for the NTP packet codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netsim.errors import CodecError
from repro.protocols.ntp.packet import (
    MODE_CLIENT,
    MODE_SERVER,
    NTPPacket,
    PACKET_LEN,
    from_ntp_timestamp,
    to_ntp_timestamp,
)


class TestTimestamps:
    def test_roundtrip(self):
        seconds = 3_637_000_000.125
        assert from_ntp_timestamp(to_ntp_timestamp(seconds)) == pytest.approx(
            seconds, abs=1e-9
        )

    def test_zero(self):
        assert to_ntp_timestamp(0.0) == 0
        assert from_ntp_timestamp(0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(CodecError):
            to_ntp_timestamp(-1.0)

    def test_fractional_resolution(self):
        # 32-bit fraction: ~233 picoseconds; 1 microsecond round-trips.
        ts = to_ntp_timestamp(1.000001)
        assert from_ntp_timestamp(ts) == pytest.approx(1.000001, abs=1e-8)


class TestCodec:
    def test_wire_length(self):
        assert len(NTPPacket().encode()) == PACKET_LEN == 48

    def test_roundtrip(self):
        packet = NTPPacket(
            mode=MODE_SERVER,
            stratum=2,
            poll=6,
            precision=-23,
            root_delay=0x1234,
            root_dispersion=0x5678,
            reference_id=0x47505300,
            reference_ts=to_ntp_timestamp(3_637_000_000.0),
            origin_ts=to_ntp_timestamp(3_637_000_001.0),
            receive_ts=to_ntp_timestamp(3_637_000_002.0),
            transmit_ts=to_ntp_timestamp(3_637_000_003.0),
        )
        assert NTPPacket.decode(packet.encode()) == packet

    def test_leap_version_mode_packing(self):
        packet = NTPPacket(mode=3, version=4, leap=3)
        wire = packet.encode()
        assert wire[0] == (3 << 6) | (4 << 3) | 3

    def test_truncated_rejected(self):
        with pytest.raises(CodecError):
            NTPPacket.decode(b"\x00" * 47)

    def test_trailing_bytes_ignored(self):
        packet = NTPPacket(mode=MODE_CLIENT)
        decoded = NTPPacket.decode(packet.encode() + b"extension")
        assert decoded.mode == MODE_CLIENT

    def test_mode_out_of_range(self):
        with pytest.raises(CodecError):
            NTPPacket(mode=8).encode()


class TestRequestResponse:
    def test_client_request_shape(self):
        request = NTPPacket.client_request(3_637_000_000.0)
        assert request.mode == MODE_CLIENT
        assert request.transmit_ts == to_ntp_timestamp(3_637_000_000.0)
        assert request.stratum == 0

    def test_valid_response_matching(self):
        request = NTPPacket.client_request(3_637_000_000.0)
        response = NTPPacket(
            mode=MODE_SERVER,
            origin_ts=request.transmit_ts,
            transmit_ts=to_ntp_timestamp(3_637_000_000.5),
        )
        assert response.is_valid_response_to(request)

    def test_response_with_wrong_origin_rejected(self):
        request = NTPPacket.client_request(3_637_000_000.0)
        response = NTPPacket(
            mode=MODE_SERVER,
            origin_ts=request.transmit_ts + 1,
            transmit_ts=to_ntp_timestamp(1.0),
        )
        assert not response.is_valid_response_to(request)

    def test_response_must_be_mode_server(self):
        request = NTPPacket.client_request(3_637_000_000.0)
        response = NTPPacket(
            mode=MODE_CLIENT,
            origin_ts=request.transmit_ts,
            transmit_ts=to_ntp_timestamp(1.0),
        )
        assert not response.is_valid_response_to(request)


@given(
    mode=st.integers(0, 7),
    stratum=st.integers(0, 255),
    poll=st.integers(-128, 127),
    precision=st.integers(-128, 127),
    ts=st.integers(0, 0xFFFFFFFFFFFFFFFF),
)
def test_codec_roundtrip_property(mode, stratum, poll, precision, ts):
    packet = NTPPacket(
        mode=mode,
        stratum=stratum,
        poll=poll,
        precision=precision,
        transmit_ts=ts,
        origin_ts=ts ^ 0xDEADBEEF,
    )
    assert NTPPacket.decode(packet.encode()) == packet
