"""Tests for the round-robin DNS server and the stub resolver."""

import pytest

from repro.netsim.queues import BernoulliLoss
from repro.protocols.dns.resolver import Resolver
from repro.protocols.dns.server import DEFAULT_WINDOW, DNSServer, RoundRobinZone


class TestRoundRobinZone:
    def test_rotation_covers_all_addresses(self):
        zone = RoundRobinZone("pool.ntp.org", addresses=list(range(10)), window=4)
        seen = set()
        for _ in range(5):
            seen.update(zone.next_answers())
        assert seen == set(range(10))

    def test_window_size(self):
        zone = RoundRobinZone("z", addresses=list(range(10)))
        assert len(zone.next_answers()) == DEFAULT_WINDOW

    def test_small_zone_returns_everything(self):
        zone = RoundRobinZone("z", addresses=[1, 2])
        assert sorted(zone.next_answers()) == [1, 2]

    def test_empty_zone(self):
        assert RoundRobinZone("z", addresses=[]).next_answers() == []

    def test_consecutive_answers_differ(self):
        """'Round-robin DNS that returns a different answer every few
        minutes' — consecutive queries see rotated windows."""
        zone = RoundRobinZone("z", addresses=list(range(12)), window=4)
        assert zone.next_answers() != zone.next_answers()

    def test_set_addresses_resets(self):
        zone = RoundRobinZone("z", addresses=list(range(8)), window=4)
        zone.next_answers()
        zone.set_addresses([100, 101])
        assert sorted(zone.next_answers()) == [100, 101]


class TestServerResolver:
    def _wire(self, net, client, server, addresses):
        dns = DNSServer(server)
        dns.add_zone(RoundRobinZone("pool.ntp.org", addresses=addresses))
        return dns, Resolver(client, server.addr)

    def test_lookup_returns_addresses(self, two_host_net):
        net, client, server = two_host_net
        dns, resolver = self._wire(net, client, server, list(range(100, 110)))
        results = []
        resolver.lookup("pool.ntp.org", results.append)
        net.scheduler.run()
        assert results[0].responded
        assert len(results[0].addresses) == 4
        assert set(results[0].addresses) <= set(range(100, 110))

    def test_nxdomain_for_unknown_zone(self, two_host_net):
        net, client, server = two_host_net
        dns, resolver = self._wire(net, client, server, [1])
        results = []
        resolver.lookup("bogus.example", results.append)
        net.scheduler.run()
        assert results[0].responded
        assert results[0].addresses == []
        assert results[0].rcode == 3

    def test_zone_names_case_insensitive(self, two_host_net):
        net, client, server = two_host_net
        dns, resolver = self._wire(net, client, server, [42])
        results = []
        resolver.lookup("POOL.NTP.ORG", results.append)
        net.scheduler.run()
        assert results[0].addresses == [42]

    def test_timeout_when_server_dead(self, two_host_net):
        net, client, server = two_host_net
        resolver = Resolver(client, server.addr, timeout=1.0, retries=1)
        results = []
        resolver.lookup("pool.ntp.org", results.append)
        net.scheduler.run()
        assert not results[0].responded

    def test_retry_recovers_from_loss(self, net_factory):
        net, client, server = net_factory(seed=6)
        forward, _ = net.topology.links_between("r0", "r1")
        forward.loss = BernoulliLoss(0.5)
        dns = DNSServer(server)
        dns.add_zone(RoundRobinZone("pool.ntp.org", addresses=[7]))
        resolver = Resolver(client, server.addr, retries=8)
        results = []
        resolver.lookup("pool.ntp.org", results.append)
        net.scheduler.run()
        assert results[0].responded

    def test_resolver_ecn_marking(self, two_host_net):
        """Queries carry the requested ECN codepoint (the §3 DNS
        variant: probe resolvers with ECT(0)-marked queries)."""
        from repro.netsim.ecn import ECN

        net, client, server = two_host_net
        dns, _ = self._wire(net, client, server, [1])
        marks = []
        server.add_tap(lambda d, p, t: marks.append(p.ecn) if d == "in" else None)
        ect_resolver = Resolver(client, server.addr, ecn=ECN.ECT_0)
        results = []
        ect_resolver.lookup("pool.ntp.org", results.append)
        net.scheduler.run()
        assert results[0].responded
        assert marks == [ECN.ECT_0]

    def test_ect_blocked_dns_server(self, two_host_net):
        """An ECT-dropping firewall blackholes ECT-marked queries while
        not-ECT queries work — the DNS face of the paper's finding."""
        from repro.netsim.ecn import ECN
        from repro.netsim.ipv4 import PROTO_UDP
        from repro.netsim.middlebox import ECTDropper

        net, client, server = two_host_net
        dns, _ = self._wire(net, client, server, [7])
        server.inbound_filters.append(ECTDropper(protocols=frozenset({PROTO_UDP})))
        plain, marked = [], []
        Resolver(client, server.addr, timeout=0.5, retries=1).lookup(
            "pool.ntp.org", plain.append
        )
        net.scheduler.run()
        Resolver(client, server.addr, timeout=0.5, retries=1, ecn=ECN.ECT_0).lookup(
            "pool.ntp.org", marked.append
        )
        net.scheduler.run()
        assert plain[0].responded
        assert not marked[0].responded

    def test_mismatched_ident_ignored(self, two_host_net):
        """A spoofed response with the wrong transaction id must not
        complete the lookup."""
        net, client, server = two_host_net
        from repro.protocols.dns.message import DNSMessage, ResourceRecord, QTYPE_A

        results = []
        resolver = Resolver(client, server.addr, timeout=0.5, retries=0)

        def spoof(datagram, packet, now):
            query = DNSMessage.decode(datagram.payload)
            fake = DNSMessage.response_to(
                query,
                [ResourceRecord(query.questions[0].qname, QTYPE_A, 1, 60, address=666)],
            )
            fake.ident = (query.ident + 1) & 0xFFFF
            sock.send(packet.src, datagram.src_port, fake.encode())

        sock = server.udp_bind(53, spoof)
        resolver.lookup("pool.ntp.org", results.append)
        net.scheduler.run()
        assert not results[0].responded
