"""Bit-identity gate for the packet hot path.

``tests/data/golden_study_*.json`` are full study archives captured
from the tree *before* the hot-path overhaul (slotted packets,
in-place TTL/ECN mutation, per-epoch route tables, inlined samplers,
int TCP flags).  A study run today must reproduce them byte for byte
— any divergence means an RNG draw was added/removed/reordered or a
wire byte changed, which silently invalidates every published number.

The archives are canonical JSON (sorted keys, compact separators) of
``{"traces": ..., "campaign": ...}`` at scale 0.02, seed 20150401.
"""

import json
from pathlib import Path

import pytest

from repro.study import Study

DATA = Path(__file__).parent / "data"

GOLDENS = [
    pytest.param(
        "golden_study_scale002_seed20150401.json",
        {},
        id="plain",
    ),
    pytest.param(
        "golden_study_scale002_seed20150401_chaos_default_7.json",
        {"faults": "default", "chaos_seed": 7},
        id="chaos",
    ),
]


@pytest.mark.parametrize("filename, extra", GOLDENS)
def test_study_reproduces_pre_refactor_golden(filename, extra):
    golden_blob = (DATA / filename).read_bytes()
    study = Study.run(scale=0.02, seed=20150401, **extra)
    doc = {"traces": study.traces.to_dict(), "campaign": study.campaign.to_dict()}
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":")).encode()
    if blob != golden_blob:
        golden_doc = json.loads(golden_blob)
        # Narrow the failure before asserting on the full blobs: which
        # top-level section diverged, and for traces, which path.
        for key in ("campaign", "traces"):
            assert doc[key] == golden_doc[key], f"{key} diverged from golden"
        raise AssertionError("archives differ despite equal sections")
