"""Fault tolerance: retried shards, killed workers, budget exhaustion.

Injected faults (:class:`FaultSpec`) make a shard raise — or hard-kill
its worker process with ``os._exit`` — until its attempt counter
passes a threshold, exercising exactly the recovery paths a flaky real
worker would: ordinary retry, ``BrokenProcessPool`` rebuild, and the
in-process fallback.  Every recovered study must still be
bit-identical to the fault-free sequential run.
"""

import pytest

from repro.obs import RunTelemetry
from repro.runner import (
    FAULT_EXIT,
    FAULT_HANG,
    FAULT_RAISE,
    FaultSpec,
    RetryPolicy,
    ShardExecutionError,
    run_study_parallel,
)
from repro.study import Study

pytestmark = [pytest.mark.slow, pytest.mark.chaos]

SCALE = 0.02
SEED = 11

#: Fast retries: these tests exercise the machinery, not the waiting.
FAST_RETRY = RetryPolicy(max_attempts=3, backoff=0.01, backoff_cap=0.05)


@pytest.fixture(scope="module")
def sequential():
    return Study.run(scale=SCALE, seed=SEED)


def _run(sequential, workers, faults):
    return run_study_parallel(
        scale=SCALE,
        seed=SEED,
        workers=workers,
        targets=sequential.traces.server_addrs,
        retry=FAST_RETRY,
        faults=faults,
    )


def test_raising_shards_retried_to_completion(sequential):
    traces, campaign = _run(
        sequential,
        workers=2,
        faults={
            0: FaultSpec(kind=FAULT_RAISE, attempts=2),
            3: FaultSpec(kind=FAULT_RAISE, attempts=1),
        },
    )
    assert traces.to_dict() == sequential.traces.to_dict()
    assert campaign.to_dict() == sequential.campaign.to_dict()


def test_killed_worker_pool_rebuilt(sequential):
    # os._exit(1) in a worker breaks the whole ProcessPoolExecutor;
    # the scheduler must rebuild it and re-run every shard still owed.
    traces, campaign = _run(
        sequential, workers=2, faults={1: FaultSpec(kind=FAULT_EXIT, attempts=1)}
    )
    assert traces.to_dict() == sequential.traces.to_dict()
    assert campaign.to_dict() == sequential.campaign.to_dict()


def test_retry_budget_exhaustion_raises(sequential):
    with pytest.raises(ShardExecutionError, match="failed after 3 attempts"):
        _run(
            sequential,
            workers=2,
            faults={0: FaultSpec(kind=FAULT_RAISE, attempts=99)},
        )


def test_inline_fallback_retries_too(sequential):
    # workers=0 degrades to in-process execution with the same retry
    # policy and the same results.
    traces, campaign = _run(
        sequential, workers=0, faults={2: FaultSpec(kind=FAULT_RAISE, attempts=1)}
    )
    assert traces.to_dict() == sequential.traces.to_dict()
    assert campaign.to_dict() == sequential.campaign.to_dict()


def test_hung_worker_gang_recovered(sequential):
    # A wedged worker never resolves its future, so the ordinary retry
    # path can't see it; only the scheduler's global hang budget
    # (shard_timeout) catches it.  The pool must be torn down, rebuilt,
    # and every owed shard resubmitted — and the merged study must
    # still be bit-identical.
    telemetry = RunTelemetry()
    traces, _campaign = run_study_parallel(
        scale=SCALE,
        seed=SEED,
        workers=2,
        targets=sequential.traces.server_addrs,
        traceroutes=False,
        retry=FAST_RETRY,
        shard_timeout=5.0,
        faults={0: FaultSpec(kind=FAULT_HANG, attempts=1, hang_seconds=30.0)},
        telemetry=telemetry,
        observe=False,
    )
    # Traces are identical whether or not traceroutes ran: hermetic
    # epochs make the two phases independent.
    assert traces.to_dict() == sequential.traces.to_dict()
    assert telemetry.runner.get("runner.pool_rebuilds", 0) >= 1
    assert telemetry.runner.get("runner.shards_recovered", 0) >= 1


def test_progress_reaches_total(sequential):
    calls = []

    def progress(done, total, label):
        calls.append((done, total, label))

    run_study_parallel(
        scale=SCALE,
        seed=SEED,
        workers=2,
        targets=sequential.traces.server_addrs,
        retry=FAST_RETRY,
        progress=progress,
    )
    assert calls, "progress callback never fired"
    totals = {total for _, total, _ in calls}
    assert len(totals) == 1
    (total,) = totals
    assert calls[-1][0] == total - 1
    assert all(0 <= done < total for done, _, _ in calls)
