"""Flight-recorder dumps from real recovery paths.

A crashing shard must leave ``flight-shard-<id>.json`` behind; a
worker killed hard enough to break the pool must at least leave the
parent's ``flight-parent.json``; and every dump must parse as the
self-describing ``ecn-udp-flight/1`` document.
"""

import pytest

from repro.obs import load_flight_dump
from repro.runner import (
    FAULT_EXIT,
    FAULT_RAISE,
    FaultSpec,
    RetryPolicy,
    ShardExecutionError,
    run_study_parallel,
)

pytestmark = [pytest.mark.slow, pytest.mark.chaos]

SCALE = 0.02
SEED = 11

FAST_RETRY = RetryPolicy(max_attempts=3, backoff=0.01, backoff_cap=0.05)


def _run(tmp_path, faults, workers=2, **kwargs):
    return run_study_parallel(
        scale=SCALE,
        seed=SEED,
        workers=workers,
        traceroutes=False,
        retry=FAST_RETRY,
        faults=faults,
        flight_dir=tmp_path,
        **kwargs,
    )


def test_crashing_shard_leaves_a_parseable_flight_dump(tmp_path):
    _run(tmp_path, faults={0: FaultSpec(kind=FAULT_RAISE, attempts=1)})
    dump_path = tmp_path / "flight-shard-0.json"
    assert dump_path.exists()
    document = load_flight_dump(dump_path)
    assert document["context"]["shard_id"] == 0
    kinds = [event["kind"] for event in document["events"]]
    assert "shard-start" in kinds
    assert "shard-crash" in kinds
    assert "InjectedShardFault" in document["reason"]


def test_killed_worker_leaves_flight_evidence(tmp_path):
    # os._exit(1) breaks the pool; the worker dumps its ring just
    # before dying and the parent records the gang recovery.
    _run(tmp_path, faults={1: FaultSpec(kind=FAULT_EXIT, attempts=1)})
    dumps = sorted(tmp_path.glob("flight-*.json"))
    assert dumps, "no flight dump survived the killed worker"
    documents = [load_flight_dump(path) for path in dumps]
    assert any(
        event["kind"] == "shard-killed"
        for document in documents
        for event in document["events"]
    )
    parent = tmp_path / "flight-parent.json"
    assert parent.exists()
    parent_kinds = [e["kind"] for e in load_flight_dump(parent)["events"]]
    assert "dispatch" in parent_kinds
    assert "gang-recovery" in parent_kinds


def test_budget_exhaustion_dumps_the_parent_ring(tmp_path):
    with pytest.raises(ShardExecutionError):
        _run(tmp_path, faults={0: FaultSpec(kind=FAULT_RAISE, attempts=99)})
    parent = load_flight_dump(tmp_path / "flight-parent.json")
    kinds = [event["kind"] for event in parent["events"]]
    assert "budget-exhausted" in kinds
    assert "retry budget" in parent["reason"]


def test_clean_run_leaves_no_dumps(tmp_path):
    _run(tmp_path, faults=None)
    assert not list(tmp_path.glob("flight-*.json"))


def test_crash_dump_carries_the_shards_event_tail(tmp_path):
    """With events on, a killed worker's dump includes its last events.

    The event ring is attached to the flight recorder per job, so the
    dump written during crash handling carries the structured narration
    of exactly the shard that triggered it — the satellite contract of
    the live observability plane.
    """
    events: list = []
    _run(
        tmp_path,
        faults={1: FaultSpec(kind=FAULT_EXIT, attempts=1)},
        event_sink=events,
    )
    document = load_flight_dump(tmp_path / "flight-shard-1.json")
    tail = document.get("event_tail")
    assert tail, "the killed shard's dump carried no event tail"
    assert all(event["shard"] == 1 for event in tail)
    assert tail[-1]["kind"] == "fault-injected"
    assert tail[-1]["fault"] == FAULT_EXIT
    # The merged study stream still arrived despite the crash-retry.
    assert any(event.get("kind") == "epoch-start" for event in events)
