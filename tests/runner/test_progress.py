"""Tests for progress aggregation, including overflow handling."""

import logging

import pytest

from repro.runner import ProgressAggregator, ProgressOverflowError
from repro.runner.shard import KIND_TRACES, Shard


def shard(shard_id=0):
    return Shard(shard_id=shard_id, kind=KIND_TRACES, vantage_key="v", batch=1,
                 trace_ids=(0, 1))


class TestAggregation:
    def test_folds_completions_into_progress_stream(self):
        calls = []
        aggregator = ProgressAggregator(
            lambda done, total, label: calls.append((done, total)), total_units=10
        )
        aggregator.shard_completed(shard(0), 4)
        aggregator.shard_completed(shard(1), 6)
        assert aggregator.done_units == 10
        assert calls == [(3, 10), (9, 10)]


class TestDispatchAnnouncements:
    def test_started_reports_first_pending_unit(self):
        calls = []
        aggregator = ProgressAggregator(
            lambda done, total, label: calls.append((done, total)), total_units=10
        )
        aggregator.shard_started(shard(0))
        aggregator.shard_completed(shard(0), 4)
        aggregator.shard_started(shard(1))
        assert calls == [(0, 10), (3, 10), (4, 10)]

    def test_started_after_completion_clamps_to_last_index(self):
        """Regression: a dispatch announcement after the final unit
        completed used to report index ``total``, which consumers
        render as ``total + 1``/``total``."""
        calls = []
        aggregator = ProgressAggregator(
            lambda done, total, label: calls.append((done, total)), total_units=4
        )
        aggregator.shard_completed(shard(0), 4)
        aggregator.shard_started(shard(1))
        assert calls[-1] == (3, 4)

    def test_started_with_zero_total_reports_index_zero(self):
        calls = []
        aggregator = ProgressAggregator(
            lambda done, total, label: calls.append((done, total)), total_units=0
        )
        aggregator.shard_started(shard(0))
        assert calls == [(0, 0)]


class TestOverflow:
    def test_overflow_logs_warning_and_clamps(self, caplog):
        """Regression: overflow used to be silently clamped away."""
        aggregator = ProgressAggregator(None, total_units=5)
        aggregator.shard_completed(shard(0), 4)
        with caplog.at_level(logging.WARNING, logger="repro.runner"):
            aggregator.shard_completed(shard(1), 4)
        assert aggregator.done_units == 5
        assert any("progress overflow" in rec.message for rec in caplog.records)

    def test_strict_mode_raises(self):
        aggregator = ProgressAggregator(None, total_units=5, strict=True)
        aggregator.shard_completed(shard(0), 4)
        with pytest.raises(ProgressOverflowError, match="exceeds total 5"):
            aggregator.shard_completed(shard(1), 4)

    def test_exact_total_is_not_an_overflow(self, caplog):
        aggregator = ProgressAggregator(None, total_units=8, strict=True)
        aggregator.shard_completed(shard(0), 4)
        aggregator.shard_completed(shard(1), 4)
        assert aggregator.done_units == 8
