"""The determinism contract: parallel execution is bit-identical.

``Study.run(workers=N)`` must produce exactly the study that
``workers=0`` produces — same report text, byte-identical exported
JSON — because every measurement epoch is a pure function of
``(params, epoch index)`` regardless of which process runs it.
"""

import pytest

from repro.study import Study

pytestmark = pytest.mark.slow

SCALE = 0.05
SEEDS = (11, 20150401)


@pytest.fixture(scope="module")
def sequential_studies():
    return {seed: Study.run(scale=SCALE, seed=seed) for seed in SEEDS}


@pytest.fixture(scope="module")
def parallel_studies():
    """Sharded runs: workers=4 for both seeds, workers=2 for one."""
    studies = {
        (seed, 4): Study.run(scale=SCALE, seed=seed, workers=4) for seed in SEEDS
    }
    studies[(SEEDS[0], 2)] = Study.run(scale=SCALE, seed=SEEDS[0], workers=2)
    return studies


def _export_bytes(study: Study, directory) -> dict[str, bytes]:
    study.save(directory)
    return {
        name: (directory / name).read_bytes()
        for name in ("summary.json", "traces.json", "traceroutes.json")
    }


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("workers", [2, 4])
def test_sharded_run_bit_identical(
    seed, workers, sequential_studies, parallel_studies, tmp_path
):
    if (seed, workers) not in parallel_studies:
        pytest.skip("workers=2 exercised for one seed only")
    sequential = sequential_studies[seed]
    parallel = parallel_studies[(seed, workers)]
    assert parallel.report() == sequential.report()
    assert _export_bytes(parallel, tmp_path / "par") == _export_bytes(
        sequential, tmp_path / "seq"
    )


def test_workers0_matches_default_run(sequential_studies):
    # workers=0 must be the plain sequential path, not a one-worker
    # pool: same world, same traces, no behaviour change.
    seed = SEEDS[0]
    sequential = sequential_studies[seed]
    explicit = Study.run(scale=SCALE, seed=seed, workers=0)
    assert explicit.traces.to_dict() == sequential.traces.to_dict()
    assert explicit.campaign.to_dict() == sequential.campaign.to_dict()


def test_in_memory_hop_fidelity(sequential_studies, parallel_studies):
    # The archival JSON drops rtt / quoted_tos / quoted_ident, so the
    # byte comparison alone would not catch a lossy wire codec; the
    # in-memory campaigns must match on every hop field too.
    seed = SEEDS[0]
    sequential = sequential_studies[seed]
    parallel = parallel_studies[(seed, 4)]
    assert len(parallel.campaign) == len(sequential.campaign)
    for seq_path, par_path in zip(sequential.campaign, parallel.campaign):
        assert par_path == seq_path
