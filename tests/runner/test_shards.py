"""Unit tests: shard planning, the wire codec, and merge."""

import pytest

from repro.core.measurement import trace_plan
from repro.core.traces import HopObservation, PathTrace, ProbeOutcome, Trace
from repro.runner import (
    KIND_TRACEROUTES,
    KIND_TRACES,
    MergeError,
    WIRE_FORMAT,
    decode_path,
    decode_trace,
    encode_path,
    encode_trace,
    merge_campaign,
    merge_traces,
    plan_shards,
)
from repro.scenario.parameters import TraceScheduleParams
from repro.scenario.vantages import VANTAGES


class TestPlanShards:
    def test_trace_shards_partition_the_plan(self):
        schedule = TraceScheduleParams()
        plan = trace_plan(schedule)
        shards = [
            s for s in plan_shards(schedule) if s.kind == KIND_TRACES
        ]
        covered = [tid for shard in shards for tid in shard.trace_ids]
        assert sorted(covered) == [p.trace_id for p in plan]
        assert len(covered) == len(set(covered))

    def test_shards_are_single_vantage_batch_slices(self):
        schedule = TraceScheduleParams()
        by_id = {p.trace_id: p for p in trace_plan(schedule)}
        for shard in plan_shards(schedule):
            if shard.kind != KIND_TRACES:
                continue
            for tid in shard.trace_ids:
                assert by_id[tid].vantage_key == shard.vantage_key
                assert by_id[tid].batch == shard.batch

    def test_one_traceroute_shard_per_vantage(self):
        shards = plan_shards(TraceScheduleParams())
        sweep = [s for s in shards if s.kind == KIND_TRACEROUTES]
        assert [s.vantage_key for s in sweep] == [spec.key for spec in VANTAGES]

    def test_traceroutes_flag_off(self):
        shards = plan_shards(TraceScheduleParams(), traceroutes=False)
        assert all(s.kind == KIND_TRACES for s in shards)

    def test_shard_ids_unique_and_sequential(self):
        shards = plan_shards(TraceScheduleParams())
        assert [s.shard_id for s in shards] == list(range(len(shards)))

    def test_planned_traces_rehydrate(self):
        shard = next(
            s for s in plan_shards(TraceScheduleParams()) if s.kind == KIND_TRACES
        )
        planned = shard.planned_traces()
        assert [p.trace_id for p in planned] == list(shard.trace_ids)
        assert all(p.vantage_key == shard.vantage_key for p in planned)

    def test_units(self):
        shards = plan_shards(TraceScheduleParams())
        traces = next(s for s in shards if s.kind == KIND_TRACES)
        sweep = next(s for s in shards if s.kind == KIND_TRACEROUTES)
        assert traces.units(40) == len(traces.trace_ids)
        assert sweep.units(40) == 40


def _sample_trace(trace_id: int = 3) -> Trace:
    trace = Trace(
        trace_id=trace_id, vantage_key="ugla-wired", batch=2, started_at=12.5
    )
    trace.add(
        ProbeOutcome(
            server_addr=1234,
            udp_plain=True,
            udp_ect=False,
            udp_plain_attempts=2,
            udp_ect_attempts=5,
            tcp_plain=True,
            tcp_ecn=True,
            ecn_negotiated=True,
            http_status=200,
        )
    )
    trace.add(ProbeOutcome(server_addr=5678))
    return trace


def _sample_path(vantage_key: str = "ugla-wired") -> PathTrace:
    return PathTrace(
        vantage_key=vantage_key,
        dst_addr=99,
        sent_ecn=1,
        reached_destination=True,
        hops=[
            HopObservation(
                ttl=1,
                responder=42,
                sent_ecn=1,
                quoted_ecn=1,
                rtt=0.013,
                quoted_tos=4,
                quoted_ident=7,
            ),
            HopObservation(ttl=2, responder=None, sent_ecn=1, quoted_ecn=None),
        ],
    )


class TestCodec:
    def test_trace_roundtrip(self):
        trace = _sample_trace()
        decoded = decode_trace(encode_trace(trace))
        assert decoded == trace

    def test_path_roundtrip_keeps_optional_hop_fields(self):
        # rtt / quoted_tos / quoted_ident are dropped by the archival
        # JSON format but must survive the shard wire format: the CLI
        # and tracebox analyses read them from in-memory objects.
        path = _sample_path()
        decoded = decode_path(encode_path(path))
        assert decoded == path
        assert decoded.hops[0].rtt == pytest.approx(0.013)
        assert decoded.hops[0].quoted_tos == 4
        assert decoded.hops[0].quoted_ident == 7


class TestMerge:
    def _result(self, traces=(), paths=None, fmt=WIRE_FORMAT):
        result = {"format": fmt, "shard_id": 0, "kind": KIND_TRACES}
        result["traces"] = [encode_trace(t) for t in traces]
        if paths is not None:
            result["kind"] = KIND_TRACEROUTES
            del result["traces"]
            result["paths"] = [encode_path(p) for p in paths]
        return result

    def test_traces_sorted_by_id(self):
        merged = merge_traces(
            [
                self._result(traces=[_sample_trace(5)]),
                self._result(traces=[_sample_trace(1), _sample_trace(3)]),
            ],
            server_addrs=[1234, 5678],
            description="d",
        )
        assert [t.trace_id for t in merged] == [1, 3, 5]
        assert merged.server_addrs == [1234, 5678]
        assert merged.description == "d"

    def test_duplicate_trace_ids_collapse(self):
        # A retried shard whose first result also arrived: both copies
        # are bit-identical by the epoch contract, keep exactly one.
        merged = merge_traces(
            [
                self._result(traces=[_sample_trace(2)]),
                self._result(traces=[_sample_trace(2)]),
            ],
            server_addrs=[],
            description="",
        )
        assert len(merged) == 1

    def test_campaign_follows_vantage_order(self):
        merged = merge_campaign(
            [
                self._result(paths=[_sample_path("b")]),
                self._result(paths=[_sample_path("a")]),
            ],
            vantage_order=["a", "b"],
        )
        assert [p.vantage_key for p in merged] == ["a", "b"]

    def test_unknown_wire_format_rejected(self):
        with pytest.raises(MergeError):
            merge_traces(
                [self._result(fmt="bogus/9")], server_addrs=[], description=""
            )
        with pytest.raises(MergeError):
            merge_campaign([self._result(fmt="bogus/9")], vantage_order=[])
