"""Tests for the shared worker pool behind the study server."""

import pytest

from repro.runner import SharedWorkerPool
from repro.study import Study


class TestPoolLifecycle:
    def test_width_must_be_positive(self):
        with pytest.raises(ValueError):
            SharedWorkerPool(0)

    def test_invalidate_unknown_executor_is_noop(self):
        pool = SharedWorkerPool(1)
        pool.invalidate(None)
        pool.invalidate(object())  # stale handle from a rebuilt pool
        assert pool.rebuilds == 0
        pool.shutdown()

    def test_shutdown_then_acquire_raises(self):
        pool = SharedWorkerPool(1)
        pool.shutdown()
        with pytest.raises(RuntimeError):
            pool.acquire()

    def test_shutdown_before_build_is_clean(self):
        SharedWorkerPool(2).shutdown()

    def test_context_avoids_fork(self):
        # Workers must not inherit the serving process's descriptors:
        # plain fork would keep accepted client sockets open in the
        # workers (peers never see EOF after close).
        context = SharedWorkerPool._context()
        assert context.get_start_method() in ("forkserver", "spawn")


@pytest.mark.slow
class TestSharedExecution:
    def test_pooled_runs_are_bit_identical_and_share_the_executor(self, tmp_path):
        scale, seed = 0.02, 11
        sequential = Study.run(scale=scale, seed=seed)
        pool = SharedWorkerPool(2)
        try:
            first = Study.run(scale=scale, seed=seed, workers=2, pool=pool)
            second = Study.run(scale=scale, seed=seed, workers=2, pool=pool)
            assert pool.rebuilds == 0
        finally:
            pool.shutdown()
        for study in (first, second):
            assert study.report() == sequential.report()

        def export(study, name):
            directory = tmp_path / name
            study.save(directory)
            return {
                artifact: (directory / artifact).read_bytes()
                for artifact in ("traces.json", "traceroutes.json", "summary.json")
            }

        baseline = export(sequential, "seq")
        assert export(first, "first") == baseline
        assert export(second, "second") == baseline

    def test_invalidate_recovers_with_a_fresh_executor(self):
        pool = SharedWorkerPool(2)
        try:
            executor = pool.acquire()
            if executor is None:
                pytest.skip("platform cannot start worker processes")
            pool.invalidate(executor)
            pool.invalidate(executor)  # idempotent per instance
            assert pool.rebuilds == 1
            rebuilt = pool.acquire()
            assert rebuilt is not None and rebuilt is not executor
            # The rebuilt pool still executes work.
            study = Study.run(scale=0.002, seed=3, workers=2, pool=pool)
            assert study.traces is not None
        finally:
            pool.shutdown()

    def test_pool_with_workers_zero_is_rejected(self):
        pool = SharedWorkerPool(1)
        try:
            with pytest.raises(ValueError):
                Study.run(scale=0.002, seed=3, workers=0, pool=pool)
        finally:
            pool.shutdown()
