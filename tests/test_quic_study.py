"""Study-level tests for the QUIC ECN-validation probe family.

Three contracts:

* **Bit-identity** — a QUIC-enabled study merges from shards to
  exactly the sequential result, plain and under chaos, like every
  other probe family.
* **Ground truth** — §13.4 classification agrees with the deployed
  middleboxes: udp-ect-blocked servers classify as blackhole, bleached
  observations stay raw-ECT-reachable (the "bleaching is invisible to
  reachability probing" headline).
* **Legacy isolation** — with ``quic=False`` nothing changes: the
  archived artefacts stay byte-identical to a pre-QUIC build (enforced
  by ``tests/test_golden_equivalence.py``'s pinned archives) and CSV /
  report / summary grow sections only when QUIC data is present.
"""

import json

import pytest

from repro.study import Study

pytestmark = pytest.mark.slow

SCALE = 0.04
SEED = 11


@pytest.fixture(scope="module")
def quic_study():
    return Study.run(scale=SCALE, seed=SEED, quic=True)


@pytest.fixture(scope="module")
def sharded_quic_study():
    return Study.run(scale=SCALE, seed=SEED, quic=True, workers=2)


def _canonical(study):
    return json.dumps(
        {"traces": study.traces.to_dict(), "campaign": study.campaign.to_dict()},
        sort_keys=True,
        separators=(",", ":"),
    )


class TestBitIdentity:
    def test_sharded_quic_study_bit_identical(self, quic_study, sharded_quic_study):
        assert _canonical(sharded_quic_study) == _canonical(quic_study)
        assert sharded_quic_study.report() == quic_study.report()

    @pytest.mark.chaos
    def test_sharded_chaotic_quic_study_bit_identical(self):
        kwargs = dict(
            scale=0.02, seed=SEED, quic=True, faults="default", chaos_seed=7
        )
        sequential = Study.run(workers=0, **kwargs)
        sharded = Study.run(workers=2, **kwargs)
        assert _canonical(sharded) == _canonical(sequential)


class TestGroundTruth:
    def test_every_outcome_has_quic_data(self, quic_study):
        for trace in quic_study.traces:
            for outcome in trace.outcomes.values():
                assert outcome.quic is not None

    def test_udp_ect_blocked_servers_classify_blackhole(self, quic_study):
        """The paper's ECT-unreachable servers are exactly the ones a
        QUIC client experiences as an ECN blackhole."""
        blocked = quic_study.world.ground_truth.udp_ect_blocked
        assert blocked
        summary = quic_study.quic_ecn
        for addr in blocked:
            assert summary.dominant_state[addr] == "blackhole"

    def test_bleached_paths_remain_raw_reachable(self, quic_study):
        """Bleaching is invisible to reachability-only probing: probes
        that QUIC classifies as bleached overwhelmingly still reached
        the server with raw ECT(0) UDP."""
        summary = quic_study.quic_ecn
        bleached = summary.row("bleached")
        assert bleached.observations > 0
        assert bleached.raw_ect_reachable_pct > 90.0
        blackhole = summary.row("blackhole")
        assert blackhole.observations > 0
        assert blackhole.raw_ect_reachable_pct < 50.0

    def test_bleaching_dominates_blackholing(self, quic_study):
        """The sequel papers' finding, reproduced in the synthetic
        Internet's default middlebox mix."""
        summary = quic_study.quic_ecn
        assert summary.bleaching_dominates
        assert 0.0 < summary.pct_ecn_usable < 100.0


class TestArtefacts:
    def test_save_includes_quic_sections(self, quic_study, tmp_path):
        out = tmp_path / "quic-study"
        quic_study.save(out)
        summary = json.loads((out / "summary.json").read_text())
        assert summary["quic_validation"]["total_probes"] == quic_study.quic_ecn.total
        states = {row["state"] for row in summary["quic_validation"]["states"]}
        assert "bleached" in states and "blackhole" in states
        header = (out / "traces.csv").read_text().splitlines()[0]
        assert "quic_state" in header
        report = (out / "report.txt").read_text()
        assert "QUIC ECN validation" in report

    def test_archive_roundtrips_quic_outcomes(self, quic_study, tmp_path):
        out = tmp_path / "roundtrip"
        quic_study.save(out)
        loaded = Study.load(out)
        assert loaded.traces.to_dict() == quic_study.traces.to_dict()
        reloaded = loaded.quic_ecn
        original = quic_study.quic_ecn
        assert reloaded.total == original.total
        assert reloaded.rows == original.rows

    def test_quic_off_artefacts_have_no_quic_sections(self, tmp_path):
        study = Study.run(scale=0.02, seed=SEED)
        out = tmp_path / "legacy"
        study.save(out)
        summary = json.loads((out / "summary.json").read_text())
        assert "quic_validation" not in summary
        header = (out / "traces.csv").read_text().splitlines()[0]
        assert "quic" not in header
        assert "QUIC" not in (out / "report.txt").read_text()
        assert study.quic_ecn.total == 0
