"""Tests for the tcpdump-equivalent packet capture."""

from repro.core.capture import PacketCapture, tcp_port_filter, udp_port_filter
from repro.netsim.ecn import ECN
from repro.protocols.http.client import fetch
from repro.protocols.http.server import PoolWebServer
from repro.protocols.ntp.client import query_server
from repro.protocols.ntp.server import NTPServer


class TestCaptureBasics:
    def test_captures_both_directions(self, two_host_net):
        net, client, server = two_host_net
        NTPServer(server)
        with PacketCapture(client) as capture:
            query_server(client, server.addr, ECN.ECT_0, lambda r: None)
            net.scheduler.run()
        directions = [c.direction for c in capture]
        assert directions == ["out", "in"]

    def test_decodes_udp(self, two_host_net):
        net, client, server = two_host_net
        NTPServer(server)
        capture = PacketCapture(client)
        query_server(client, server.addr, ECN.ECT_0, lambda r: None)
        net.scheduler.run()
        capture.stop()
        assert capture.packets[0].udp.dst_port == 123
        assert capture.packets[0].ecn is ECN.ECT_0
        assert capture.packets[1].ecn is ECN.NOT_ECT

    def test_udp_port_filter(self, two_host_net):
        net, client, server = two_host_net
        NTPServer(server)
        capture = PacketCapture(client, capture_filter=udp_port_filter(123))
        other = client.udp_bind(None)
        other.send(server.addr, 9999, b"noise")
        query_server(client, server.addr, ECN.NOT_ECT, lambda r: None)
        net.scheduler.run()
        assert all(
            123 in (c.udp.src_port, c.udp.dst_port) for c in capture.stop()
        )

    def test_tcp_filter_and_decode(self, two_host_net):
        net, client, server = two_host_net
        PoolWebServer(server)
        capture = PacketCapture(client, capture_filter=tcp_port_filter(80))
        fetch(client, server.addr, use_ecn=True, callback=lambda r: None)
        net.scheduler.run()
        packets = capture.stop()
        assert packets, "expected TCP traffic"
        assert all(c.tcp is not None for c in packets)
        # First outbound segment is the ECN-setup SYN.
        from repro.tcp.segment import Flags

        syn = packets[0].tcp
        assert syn.flags & Flags.SYN and syn.flags & Flags.ECE and syn.flags & Flags.CWR

    def test_max_packets_cap(self, two_host_net):
        net, client, server = two_host_net
        NTPServer(server)
        capture = PacketCapture(client, max_packets=1)
        query_server(client, server.addr, ECN.NOT_ECT, lambda r: None)
        net.scheduler.run()
        assert len(capture) == 1
        assert capture.dropped >= 1

    def test_stop_is_idempotent_and_detaches(self, two_host_net):
        net, client, server = two_host_net
        NTPServer(server)
        capture = PacketCapture(client)
        capture.stop()
        capture.stop()
        query_server(client, server.addr, ECN.NOT_ECT, lambda r: None)
        net.scheduler.run()
        assert len(capture) == 0


class TestSummaries:
    def test_dump_mentions_protocol_and_marks(self, two_host_net):
        net, client, server = two_host_net
        NTPServer(server)
        capture = PacketCapture(client)
        query_server(client, server.addr, ECN.ECT_0, lambda r: None)
        net.scheduler.run()
        text = capture.dump()
        assert "UDP" in text
        assert "ECT(0)" in text
        assert "not-ECT" in text

    def test_icmp_summary(self, two_host_net):
        net, client, server = two_host_net
        capture = PacketCapture(client)
        client.udp_bind(None).send(server.addr, 33434, b"probe", ttl=1)
        net.scheduler.run()
        capture.stop()
        icmp = [c for c in capture if c.icmp is not None]
        assert len(icmp) == 1
        assert "type=11" in icmp[0].summary()


class TestSummaryFlags:
    def test_tcp_flags_rendered_from_segment_fields(self):
        """Regression: summary() used to recover flags by splitting the
        segment's repr string; render them from the flag bits."""
        from repro.core.capture import CapturedPacket
        from repro.netsim.ipv4 import IPv4Packet, PROTO_TCP, parse_addr
        from repro.tcp.segment import Flags, TCPSegment

        segment = TCPSegment(
            src_port=49152,
            dst_port=80,
            seq=1,
            ack=0,
            flags=Flags.SYN | Flags.ECE | Flags.CWR,
        )
        packet = IPv4Packet(
            src=parse_addr("192.0.2.1"),
            dst=parse_addr("198.51.100.1"),
            protocol=PROTO_TCP,
        )
        captured = CapturedPacket(
            time=0.0, direction="out", packet=packet, tcp=segment
        )
        summary = captured.summary()
        assert "[SYN|ECE|CWR]" in summary
        assert "49152" in summary and "80" in summary

    def test_tcp_no_flags_renders_dash(self):
        from repro.core.capture import CapturedPacket
        from repro.netsim.ipv4 import IPv4Packet, PROTO_TCP, parse_addr
        from repro.tcp.segment import Flags, TCPSegment

        segment = TCPSegment(
            src_port=1, dst_port=2, seq=0, ack=0, flags=Flags(0)
        )
        packet = IPv4Packet(
            src=parse_addr("192.0.2.1"),
            dst=parse_addr("198.51.100.1"),
            protocol=PROTO_TCP,
        )
        captured = CapturedPacket(
            time=0.0, direction="out", packet=packet, tcp=segment
        )
        assert "[-]" in captured.summary()
