"""Tests for NTP pool discovery via DNS."""

import pytest

from repro.core.discovery import PoolDiscovery


class TestDiscovery:
    def test_converges_on_full_pool(self, fresh_world):
        discovery = PoolDiscovery(
            fresh_world.vantage_hosts["ugla-wired"],
            fresh_world.dns_addr,
            fresh_world.pool.zone_names(),
        )
        report = discovery.run(until_stable_sweeps=2)
        assert len(report) == len(fresh_world.servers)
        assert set(report.addresses) == {s.addr for s in fresh_world.servers}

    def test_single_sweep_finds_partial_pool(self, fresh_world):
        discovery = PoolDiscovery(
            fresh_world.vantage_hosts["ugla-wired"],
            fresh_world.dns_addr,
            ["pool.ntp.org"],
        )
        report = discovery.run(sweeps=1)
        # One query against the global zone returns a 4-address window.
        assert len(report) == 4
        assert report.sweeps == 1

    def test_zone_membership_recorded(self, fresh_world):
        discovery = PoolDiscovery(
            fresh_world.vantage_hosts["ugla-wired"],
            fresh_world.dns_addr,
            fresh_world.pool.zone_names(),
        )
        report = discovery.run(until_stable_sweeps=2)
        # Every discovered server carries at least one zone, and
        # membership is consistent with the pool's ground truth.
        for server in report.servers.values():
            assert server.zones
            member = fresh_world.pool.member_by_addr(server.addr)
            assert server.zones <= set(member.zones)

    def test_query_accounting(self, fresh_world):
        zones = fresh_world.pool.zone_names()
        discovery = PoolDiscovery(
            fresh_world.vantage_hosts["ugla-wired"], fresh_world.dns_addr, zones
        )
        report = discovery.run(sweeps=2)
        assert report.queries_sent == 2 * len(zones)
        assert report.queries_answered == report.queries_sent

    def test_first_seen_order(self, fresh_world):
        discovery = PoolDiscovery(
            fresh_world.vantage_hosts["ugla-wired"],
            fresh_world.dns_addr,
            ["pool.ntp.org"],
        )
        report = discovery.run(sweeps=3)
        times = [report.servers[a].first_seen for a in report.addresses]
        assert times == sorted(times)

    def test_requires_zones(self, fresh_world):
        with pytest.raises(ValueError):
            PoolDiscovery(
                fresh_world.vantage_hosts["ugla-wired"], fresh_world.dns_addr, []
            )

    def test_max_sweeps_bounds_runtime(self, fresh_world):
        discovery = PoolDiscovery(
            fresh_world.vantage_hosts["ugla-wired"],
            fresh_world.dns_addr,
            ["pool.ntp.org"],
        )
        report = discovery.run(until_stable_sweeps=10_000, max_sweeps=5)
        assert report.sweeps == 5
