"""Tests for the extension probe: Kühlewind-style TCP ECN usability."""

from repro.core.probes import probe_tcp_ecn_usability
from repro.protocols.http.server import PoolWebServer
from repro.tcp.connection import ECNServerPolicy


class TestUsabilityProbe:
    def test_compliant_server_echoes_ece(self, two_host_net):
        net, client, server = two_host_net
        PoolWebServer(server, ecn_policy=ECNServerPolicy.NEGOTIATE)
        result = probe_tcp_ecn_usability(client, server.addr)
        assert result.negotiated
        assert result.ce_sent
        assert result.ece_echoed
        assert result.response_ok

    def test_non_negotiating_server_never_echoes(self, two_host_net):
        net, client, server = two_host_net
        PoolWebServer(server, ecn_policy=ECNServerPolicy.IGNORE)
        result = probe_tcp_ecn_usability(client, server.addr)
        assert not result.negotiated
        assert not result.ce_sent  # no ECT data on a non-ECN connection
        assert not result.ece_echoed
        assert result.response_ok  # the page still loads

    def test_reflecting_server_fails_usability(self, two_host_net):
        net, client, server = two_host_net
        PoolWebServer(server, ecn_policy=ECNServerPolicy.REFLECT)
        result = probe_tcp_ecn_usability(client, server.addr)
        assert not result.negotiated
        assert not result.ece_echoed

    def test_usability_on_measured_world(self, fresh_world):
        """Against the calibrated population: negotiating servers are
        (approximately) all usable — matching Kühlewind et al.'s ~90 %
        and the paper's comparable UDP result."""
        from repro.tcp.connection import ECNServerPolicy as Policy

        world = fresh_world
        host = world.vantage_hosts["ec2-ireland"]
        negotiators = [
            s
            for s in world.servers
            if s.web_policy is Policy.NEGOTIATE
            and s.addr not in world.ground_truth.offline_batch1
            and s.addr not in world.ground_truth.any_ect_blocked
        ][:15]
        usable = 0
        for server in negotiators:
            result = probe_tcp_ecn_usability(host, server.addr)
            if result.negotiated and result.ece_echoed:
                usable += 1
        assert usable >= 0.8 * len(negotiators)


class TestUnresolvedFetchGuard:
    def test_raises_instead_of_indexerror_when_fetch_never_resolves(self, monkeypatch):
        """Regression: an HTTP fetch whose callback never fired made
        the probe crash with IndexError on ``results[0]``."""
        import pytest

        from repro.core import probes

        class DummyConn:
            force_ce_once = False

        class DummyFetch:
            def __init__(self, *args, **kwargs):
                self.conn = DummyConn()

        class DummyScheduler:
            def run(self):
                pass

        class DummyNetwork:
            scheduler = DummyScheduler()

        class DummyHost:
            network = DummyNetwork()

        monkeypatch.setattr(probes, "HTTPFetch", DummyFetch)
        with pytest.raises(RuntimeError, match="did not resolve"):
            probes.probe_tcp_ecn_usability(DummyHost(), server_addr=1)
