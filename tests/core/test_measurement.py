"""Tests for the measurement application and trace scheduling."""

import pytest

from repro.core.measurement import MeasurementApplication, trace_plan
from repro.scenario.parameters import TraceScheduleParams
from repro.scenario.vantages import VANTAGES


class TestTracePlan:
    def test_paper_schedule_totals(self):
        plan = trace_plan(TraceScheduleParams())
        assert len(plan) == 210
        assert len([p for p in plan if p.batch == 1]) == 24  # 3 vantages x 8

    def test_batch1_only_early_vantages(self):
        plan = trace_plan(TraceScheduleParams())
        early = {spec.key for spec in VANTAGES if spec.in_batch1}
        assert {p.vantage_key for p in plan if p.batch == 1} == early

    def test_batch2_covers_all_vantages(self):
        plan = trace_plan(TraceScheduleParams())
        assert {p.vantage_key for p in plan if p.batch == 2} == {
            spec.key for spec in VANTAGES
        }

    def test_batches_ordered(self):
        plan = trace_plan(TraceScheduleParams())
        batches = [p.batch for p in plan]
        assert batches == sorted(batches)

    def test_trace_ids_unique_and_sequential(self):
        plan = trace_plan(TraceScheduleParams())
        assert [p.trace_id for p in plan] == list(range(210))

    def test_balanced_distribution(self):
        plan = trace_plan(TraceScheduleParams())
        counts = {}
        for planned in plan:
            counts[planned.vantage_key] = counts.get(planned.vantage_key, 0) + 1
        assert max(counts.values()) - min(counts.values()) <= 9

    def test_overflowing_batch1_rejected(self):
        with pytest.raises(ValueError):
            trace_plan(
                TraceScheduleParams(
                    total_traces=10, batch1_traces_per_home_vantage=10
                )
            )

    def test_overflowing_batch1_rejected_before_partial_plan(self):
        # Regression: the negative-remainder schedule used to build the
        # whole batch-1 plan and then silently produce an empty batch 2
        # (range over a negative count); it must fail up front instead.
        with pytest.raises(ValueError, match="exceed the study total"):
            trace_plan(
                TraceScheduleParams(
                    total_traces=5, batch1_traces_per_home_vantage=2
                )
            )

    def test_negative_total_rejected(self):
        with pytest.raises(ValueError, match="total_traces"):
            trace_plan(TraceScheduleParams(total_traces=-1))

    def test_exact_batch1_fill_allowed(self):
        # total == batch-1 allocation is a valid schedule: no batch 2.
        plan = trace_plan(
            TraceScheduleParams(total_traces=6, batch1_traces_per_home_vantage=2)
        )
        assert len(plan) == 6
        assert all(p.batch == 1 for p in plan)


class TestMeasurement:
    def test_single_trace_covers_all_targets(self, fresh_world):
        app = MeasurementApplication(fresh_world)
        trace = app.run_trace("ec2-frankfurt", trace_id=0, batch=1)
        assert set(trace.outcomes) == {s.addr for s in fresh_world.servers}

    def test_custom_target_list_respected(self, fresh_world):
        targets = [s.addr for s in fresh_world.servers[:5]]
        app = MeasurementApplication(fresh_world, targets=targets)
        trace = app.run_trace("ec2-frankfurt", trace_id=0, batch=1)
        assert set(trace.outcomes) == set(targets)

    def test_outcome_fields_consistent(self, fresh_world):
        app = MeasurementApplication(
            fresh_world, targets=[fresh_world.servers[0].addr]
        )
        trace = app.run_trace("ugla-wired", trace_id=0, batch=1)
        outcome = next(iter(trace.outcomes.values()))
        if outcome.udp_plain:
            assert 1 <= outcome.udp_plain_attempts <= 5
        else:
            assert outcome.udp_plain_attempts == 5
        if outcome.ecn_negotiated:
            assert outcome.tcp_ecn or outcome.tcp_plain

    def test_study_follows_plan(self, study_results):
        world, trace_set, _ = study_results
        plan = trace_plan(world.params.schedule)
        assert len(trace_set) == len(plan)
        assert [t.trace_id for t in trace_set] == [p.trace_id for p in plan]
        assert [t.batch for t in trace_set] == [p.batch for p in plan]

    def test_study_timestamps_increase(self, study_results):
        _, trace_set, _ = study_results
        starts = [t.started_at for t in trace_set]
        assert starts == sorted(starts)
        assert starts[1] > starts[0]

    def test_campaign_covers_vantage_target_product(self, study_results):
        world, trace_set, campaign = study_results
        assert len(campaign) == 13 * len(world.servers)
        keys = {p.vantage_key for p in campaign}
        assert keys == set(world.vantage_hosts)
