"""Tests for the tracebox-style header differ."""

import pytest

from repro.core.tracebox import (
    FIELD_DSCP,
    FIELD_ECN,
    diff_path,
    run_tracebox,
)
from repro.core.traces import HopObservation, PathTrace
from repro.netsim.ecn import ECN, tos_byte
from repro.netsim.middlebox import ECTBleacher, TOSBleacher


def hop(ttl, tos, responder=1000):
    return HopObservation(
        ttl=ttl,
        responder=responder + ttl,
        sent_ecn=int(ECN.ECT_0),
        quoted_ecn=tos & 0b11,
        quoted_tos=tos,
    )


class TestDiffPath:
    def _path(self, toses):
        path = PathTrace(vantage_key="v", dst_addr=9, sent_ecn=int(ECN.ECT_0))
        for ttl, tos in enumerate(toses, start=1):
            path.hops.append(hop(ttl, tos))
        return path

    def test_clean_path_no_changes(self):
        sent = tos_byte(dscp=10, ecn=ECN.ECT_0)
        result = diff_path(self._path([sent, sent, sent]), sent_dscp=10)
        assert result.changes == []
        assert result.classify_tos_interference() == "clean"

    def test_ecn_specific_bleaching(self):
        sent = tos_byte(dscp=10, ecn=ECN.ECT_0)
        bleached = tos_byte(dscp=10, ecn=ECN.NOT_ECT)
        result = diff_path(self._path([sent, bleached, bleached]), sent_dscp=10)
        assert result.classify_tos_interference() == "ecn-specific"
        assert result.first_change_ttl(FIELD_ECN) == 2
        assert result.changes_for(FIELD_DSCP) == []

    def test_tos_washing(self):
        sent = tos_byte(dscp=10, ecn=ECN.ECT_0)
        result = diff_path(self._path([sent, 0, 0]), sent_dscp=10)
        assert result.classify_tos_interference() == "tos-washing"
        assert result.first_change_ttl(FIELD_ECN) == 2
        assert result.first_change_ttl(FIELD_DSCP) == 2

    def test_dscp_only_remarking(self):
        sent = tos_byte(dscp=10, ecn=ECN.ECT_0)
        remarked = tos_byte(dscp=0, ecn=ECN.ECT_0)
        result = diff_path(self._path([sent, remarked]), sent_dscp=10)
        assert result.classify_tos_interference() == "dscp-only"

    def test_unresponsive_hops_skipped(self):
        path = PathTrace(vantage_key="v", dst_addr=9, sent_ecn=int(ECN.ECT_0))
        path.hops.append(
            HopObservation(ttl=1, responder=None, sent_ecn=int(ECN.ECT_0), quoted_ecn=None)
        )
        assert diff_path(path, sent_dscp=0).changes == []


class TestRunTracebox:
    def test_detects_ect_bleacher_at_correct_hop(self, net_factory):
        net, client, server = net_factory(hops=4)
        net.topology.routers["r2"].add_middlebox(ECTBleacher())
        result = run_tracebox(client, server.addr, dscp=12, ecn=ECN.ECT_0)
        assert result.classify_tos_interference() == "ecn-specific"
        # r2 is the third router: hop TTL 3.
        assert result.first_change_ttl(FIELD_ECN) == 3
        assert result.first_change_ttl(FIELD_DSCP) is None

    def test_detects_tos_washer(self, net_factory):
        net, client, server = net_factory(hops=4)
        net.topology.routers["r1"].add_middlebox(TOSBleacher())
        result = run_tracebox(client, server.addr, dscp=12, ecn=ECN.ECT_0)
        assert result.classify_tos_interference() == "tos-washing"
        assert result.first_change_ttl(FIELD_ECN) == 2
        assert result.first_change_ttl(FIELD_DSCP) == 2

    def test_clean_network(self, net_factory):
        net, client, server = net_factory(hops=4)
        result = run_tracebox(client, server.addr, dscp=12)
        assert result.classify_tos_interference() == "clean"
        assert len(result.path.hops) >= 3

    def test_on_synthetic_internet(self, fresh_world):
        """Against the calibrated world, every interfering path that
        tracebox flags is ECN-specific: the scenario deploys ECN
        bleachers, not TOS washers."""
        world = fresh_world
        host = world.vantage_hosts["ec2-virginia"]
        verdicts = set()
        for server in world.servers[:40]:
            result = run_tracebox(host, server.addr, dscp=8, params=world.params.probes)
            verdicts.add(result.classify_tos_interference())
        assert "clean" in verdicts
        assert verdicts <= {"clean", "ecn-specific"}
