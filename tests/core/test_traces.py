"""Tests for the trace data model and serialisation."""

import pytest

from repro.core.traces import (
    HopObservation,
    PathTrace,
    ProbeOutcome,
    QUICProbeOutcome,
    Trace,
    TraceSet,
    TracerouteCampaign,
    _outcome_from_row,
    _outcome_to_row,
)
from repro.netsim.ecn import ECN


def outcome(addr, plain=True, ect=True, tcp=False, ecn_neg=False, status=None):
    return ProbeOutcome(
        server_addr=addr,
        udp_plain=plain,
        udp_ect=ect,
        udp_plain_attempts=1 if plain else 5,
        udp_ect_attempts=1 if ect else 5,
        tcp_plain=tcp,
        tcp_ecn=tcp,
        ecn_negotiated=ecn_neg,
        http_status=status,
    )


class TestProbeOutcome:
    def test_differential_plain_only(self):
        assert outcome(1, plain=True, ect=False).udp_differential_plain_only
        assert not outcome(1, plain=True, ect=True).udp_differential_plain_only
        assert not outcome(1, plain=False, ect=False).udp_differential_plain_only

    def test_differential_ect_only(self):
        assert outcome(1, plain=False, ect=True).udp_differential_ect_only
        assert not outcome(1, plain=True, ect=True).udp_differential_ect_only


class TestTraceAggregates:
    def _trace(self):
        trace = Trace(trace_id=0, vantage_key="v", batch=1, started_at=0.0)
        trace.add(outcome(1, plain=True, ect=True, tcp=True, ecn_neg=True, status=302))
        trace.add(outcome(2, plain=True, ect=False))
        trace.add(outcome(3, plain=False, ect=False))
        trace.add(outcome(4, plain=False, ect=True, tcp=True))
        return trace

    def test_counts(self):
        trace = self._trace()
        assert trace.count_udp_plain() == 2
        assert trace.count_udp_ect() == 2
        assert trace.count_udp_both() == 1
        assert trace.count_tcp_plain() == 2
        assert trace.count_ecn_negotiated() == 1

    def test_figure2_percentages(self):
        trace = self._trace()
        assert trace.pct_ect_given_plain() == pytest.approx(50.0)
        assert trace.pct_plain_given_ect() == pytest.approx(50.0)

    def test_percentages_none_when_empty(self):
        trace = Trace(trace_id=0, vantage_key="v", batch=1, started_at=0.0)
        assert trace.pct_ect_given_plain() is None
        assert trace.pct_plain_given_ect() is None

    def test_outcome_lookup(self):
        trace = self._trace()
        assert trace.outcome_for(2).udp_differential_plain_only
        assert trace.outcome_for(99) is None


class TestTraceSetRoundtrip:
    def _trace_set(self):
        ts = TraceSet(server_addrs=[1, 2, 3, 4], description="unit test")
        for trace_id, vantage in enumerate(("a", "b", "a")):
            trace = Trace(
                trace_id=trace_id,
                vantage_key=vantage,
                batch=1 if trace_id < 2 else 2,
                started_at=float(trace_id),
            )
            trace.add(outcome(1, tcp=True, ecn_neg=True, status=200))
            trace.add(outcome(2, plain=True, ect=False))
            ts.add(trace)
        return ts

    def test_json_roundtrip(self, tmp_path):
        ts = self._trace_set()
        path = tmp_path / "traces.json"
        ts.save(path)
        loaded = TraceSet.load(path)
        assert loaded.server_addrs == ts.server_addrs
        assert loaded.description == "unit test"
        assert len(loaded) == 3
        original = ts.traces[0].outcome_for(1)
        restored = loaded.traces[0].outcome_for(1)
        assert restored == original

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            TraceSet.from_dict({"format": "bogus"})

    def test_quic_outcome_roundtrip(self, tmp_path):
        """The append-only row extension (9 -> 17 elements) survives
        the archival JSON codec with full fidelity."""
        ts = self._trace_set()
        quic = QUICProbeOutcome(
            state="bleached",
            handshake_ok=True,
            handshake_attempts=1,
            packets_sent=9,
            packets_acked=8,
            ect0_echoed=2,
            ect1_echoed=0,
            ce_echoed=1,
        )
        ts.traces[0].outcome_for(1).quic = quic
        path = tmp_path / "quic-traces.json"
        ts.save(path)
        loaded = TraceSet.load(path)
        assert loaded.traces[0].outcome_for(1).quic == quic
        assert loaded.traces[0].outcome_for(2).quic is None
        assert loaded.traces[1].outcome_for(1).quic is None

    def test_row_codec_length_is_append_only(self):
        legacy = outcome(1, tcp=True, ecn_neg=True, status=200)
        assert len(_outcome_to_row(legacy)) == 9
        legacy.quic = QUICProbeOutcome(state="valid")
        row = _outcome_to_row(legacy)
        assert len(row) == 17
        assert _outcome_from_row(row) == legacy
        # Legacy 9-element rows (pre-QUIC archives) still decode.
        assert _outcome_from_row(row[:9]).quic is None

    def test_by_vantage(self):
        ts = self._trace_set()
        assert len(ts.by_vantage("a")) == 2
        assert len(ts.by_vantage("b")) == 1
        assert ts.vantage_keys() == ["a", "b"]

    def test_by_batch(self):
        ts = self._trace_set()
        assert len(ts.by_batch(1)) == 2
        assert len(ts.by_batch(2)) == 1


class TestPathTraces:
    def _path(self):
        path = PathTrace(vantage_key="v", dst_addr=99, sent_ecn=int(ECN.ECT_0))
        path.hops.append(HopObservation(1, 11, int(ECN.ECT_0), int(ECN.ECT_0)))
        path.hops.append(HopObservation(2, None, int(ECN.ECT_0), None))
        path.hops.append(HopObservation(3, 33, int(ECN.ECT_0), int(ECN.NOT_ECT)))
        path.hops.append(HopObservation(4, 44, int(ECN.ECT_0), int(ECN.NOT_ECT)))
        return path

    def test_mark_preserved(self):
        path = self._path()
        assert path.hops[0].mark_preserved is True
        assert path.hops[1].mark_preserved is None
        assert path.hops[2].mark_preserved is False

    def test_first_strip_ttl(self):
        assert self._path().first_strip_ttl() == 3
        clean = PathTrace(vantage_key="v", dst_addr=1, sent_ecn=2)
        assert clean.first_strip_ttl() is None

    def test_responding_hops(self):
        assert [h.ttl for h in self._path().responding_hops()] == [1, 3, 4]

    def test_campaign_roundtrip(self, tmp_path):
        campaign = TracerouteCampaign()
        campaign.add(self._path())
        path = tmp_path / "routes.json"
        campaign.save(path)
        loaded = TracerouteCampaign.load(path)
        assert len(loaded) == 1
        restored = loaded.paths[0]
        assert restored.dst_addr == 99
        assert [h.responder for h in restored.hops] == [11, None, 33, 44]
        assert restored.hops[2].mark_preserved is False

    def test_campaign_by_vantage(self):
        campaign = TracerouteCampaign()
        campaign.add(self._path())
        assert len(campaign.by_vantage("v")) == 1
        assert campaign.by_vantage("other") == []
