"""Tests for the probing primitives against the synthetic Internet."""

import pytest

from repro.core.probes import Traceroute, probe_tcp, probe_udp, run_traceroute
from repro.netsim.ecn import ECN


class TestUDPProbe:
    def test_online_server_reachable_both_ways(self, fresh_world):
        host = fresh_world.vantage_hosts["ugla-wired"]
        truth = fresh_world.ground_truth
        special = (
            truth.udp_ect_blocked
            | truth.any_ect_blocked
            | truth.flaky_ect_blocked
            | truth.not_ect_blocked
            | truth.phoenix
            | truth.offline_batch1
        )
        target = next(s for s in fresh_world.servers if s.addr not in special)
        assert probe_udp(host, target.addr, ECN.NOT_ECT).responded
        assert probe_udp(host, target.addr, ECN.ECT_0).responded

    def test_offline_server_unreachable_after_five_attempts(self, fresh_world):
        host = fresh_world.vantage_hosts["ugla-wired"]
        offline = sorted(fresh_world.ground_truth.offline_batch1)[0]
        result = probe_udp(host, offline, ECN.NOT_ECT)
        assert not result.responded
        assert result.attempts == 5


class TestTCPProbe:
    def test_web_server_fetch(self, fresh_world):
        truth = fresh_world.ground_truth
        target = next(
            s
            for s in fresh_world.servers
            if s.web is not None
            and s.addr not in truth.any_ect_blocked
            and s.addr not in truth.offline_batch1
        )
        host = fresh_world.vantage_hosts["ec2-ireland"]
        result = probe_tcp(host, target.addr, use_ecn=False)
        assert result.ok
        assert result.response.status in (200, 302)

    def test_ecn_negotiation_matches_policy(self, fresh_world):
        from repro.tcp.connection import ECNServerPolicy

        host = fresh_world.vantage_hosts["ec2-ireland"]
        negotiator = next(
            s
            for s in fresh_world.servers
            if s.web_policy is ECNServerPolicy.NEGOTIATE
            and s.addr not in fresh_world.ground_truth.offline_batch1
            and s.addr not in fresh_world.ground_truth.udp_ect_blocked
        )
        result = probe_tcp(host, negotiator.addr, use_ecn=True)
        assert result.ecn_negotiated

    def test_no_web_server_not_reachable(self, fresh_world):
        target = next(s for s in fresh_world.servers if s.web is None)
        host = fresh_world.vantage_hosts["ec2-ireland"]
        result = probe_tcp(host, target.addr, use_ecn=False)
        assert not result.ok


class TestTraceroute:
    def test_reaches_near_destination(self, fresh_world):
        target = fresh_world.servers[0]
        host = fresh_world.vantage_hosts["perkins-home"]
        path = run_traceroute(host, target.addr, params=fresh_world.params.probes)
        assert len(path.hops) >= 3
        # The last responding hop is the destination's access router.
        last = path.hops[-1]
        access_router = fresh_world.topology.routers[target.host.router_id]
        final_asn = fresh_world.as_map.lookup(last.responder)
        assert final_asn == access_router.asn

    def test_hops_ordered_by_ttl(self, fresh_world):
        target = fresh_world.servers[1]
        host = fresh_world.vantage_hosts["ec2-tokyo"]
        path = run_traceroute(host, target.addr, params=fresh_world.params.probes)
        ttls = [hop.ttl for hop in path.hops]
        assert ttls == sorted(ttls)

    def test_marks_preserved_on_clean_path(self, fresh_world):
        truth = fresh_world.ground_truth
        bleached_asns = {
            fresh_world.topology.routers[r].asn for r in truth.bleacher_routers
        }
        target = next(
            s for s in fresh_world.servers if s.asn not in bleached_asns
        )
        host = fresh_world.vantage_hosts["ugla-wired"]
        path = run_traceroute(host, target.addr, params=fresh_world.params.probes)
        assert all(h.mark_preserved for h in path.responding_hops())

    def test_strip_visible_behind_bleacher(self, fresh_world):
        truth = fresh_world.ground_truth
        # A border bleacher sits on every path into its AS: any server
        # of that AS shows the strip.
        reliable = truth.boundary_bleacher_routers - truth.flaky_bleacher_routers
        bleached_border_asns = {
            fresh_world.topology.routers[r].asn for r in reliable
        }
        target = next(
            (s for s in fresh_world.servers if s.asn in bleached_border_asns),
            None,
        )
        if target is None:
            pytest.skip("no server behind a reliable border bleacher in this seed")
        host = fresh_world.vantage_hosts["ec2-virginia"]
        path = run_traceroute(host, target.addr, params=fresh_world.params.probes)
        assert path.first_strip_ttl() is not None

    def test_sent_ecn_recorded(self, fresh_world):
        target = fresh_world.servers[2]
        host = fresh_world.vantage_hosts["ec2-oregon"]
        path = run_traceroute(host, target.addr, ecn=ECN.ECT_0)
        assert path.sent_ecn == int(ECN.ECT_0)
        assert all(h.sent_ecn == int(ECN.ECT_0) for h in path.hops)

    def test_trailing_silence_trimmed(self, fresh_world):
        target = fresh_world.servers[3]
        host = fresh_world.vantage_hosts["ec2-oregon"]
        path = run_traceroute(host, target.addr, params=fresh_world.params.probes)
        assert path.hops, "expected at least one responding hop"
        assert path.hops[-1].responded

    def test_does_not_reach_destination_host(self, fresh_world):
        """Pool hosts ignore high-port UDP: no port-unreachable, so the
        trace 'stops one hop before the destination' (§4.2)."""
        target = fresh_world.servers[4]
        host = fresh_world.vantage_hosts["ec2-oregon"]
        path = run_traceroute(host, target.addr, params=fresh_world.params.probes)
        assert not path.reached_destination
