"""Documentation integrity: the docs reference things that exist."""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


class TestDocsExist:
    @pytest.mark.parametrize(
        "name", ["README.md", "DESIGN.md", "EXPERIMENTS.md", "pyproject.toml"]
    )
    def test_present_and_nonempty(self, name):
        path = ROOT / name
        assert path.exists()
        assert len(path.read_text()) > 500 or name == "pyproject.toml"


class TestReferencedArtifactsExist:
    def _referenced_paths(self, text):
        return set(re.findall(r"`((?:benchmarks|examples|src|tests)/[\w/.]+\.(?:py|md))`", text))

    @pytest.mark.parametrize("doc", ["README.md", "DESIGN.md", "EXPERIMENTS.md"])
    def test_paths_resolve(self, doc):
        text = (ROOT / doc).read_text()
        for ref in self._referenced_paths(text):
            if "*" in ref:
                continue
            assert (ROOT / ref).exists(), f"{doc} references missing {ref}"

    def test_design_experiment_index_covers_bench_files(self):
        """Every experiment row's bench target exists; every bench file
        is mentioned somewhere in the docs."""
        design = (ROOT / "DESIGN.md").read_text()
        readme = (ROOT / "README.md").read_text()
        experiments = (ROOT / "EXPERIMENTS.md").read_text()
        docs = design + readme + experiments
        for bench in (ROOT / "benchmarks").glob("test_*.py"):
            assert bench.name in docs or bench.stem in docs, (
                f"{bench.name} not referenced in any doc"
            )

    def test_examples_documented_in_readme(self):
        readme = (ROOT / "README.md").read_text()
        for example in (ROOT / "examples").glob("*.py"):
            assert example.name in readme or example.stem in readme, (
                f"{example.name} missing from README"
            )


class TestPaperNumbersQuoted:
    """EXPERIMENTS.md quotes the paper's headline values verbatim."""

    def test_headline_values(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for value in ("98.97", "99.45", "82.0", "2253", "1334", "1095", "59.1", "155"):
            assert value in text, value
