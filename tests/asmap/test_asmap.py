"""Tests for IP→AS mapping and boundary classification."""

import pytest

from repro.asmap.boundaries import boundary_fraction, classify_hop
from repro.asmap.mapping import ASMap, NoisyASMap, UNKNOWN_ASN
from repro.netsim.ipv4 import Prefix, parse_addr


def build_map():
    truth = ASMap()
    truth.register(Prefix.parse("62.0.0.0/16"), 100)
    truth.register(Prefix.parse("62.1.0.0/16"), 200)
    truth.register(Prefix.parse("24.0.0.0/16"), 300)
    return truth


class TestASMap:
    def test_lookup(self):
        truth = build_map()
        assert truth.lookup(parse_addr("62.0.1.1")) == 100
        assert truth.lookup(parse_addr("62.1.1.1")) == 200

    def test_unknown(self):
        assert build_map().lookup(parse_addr("9.9.9.9")) == UNKNOWN_ASN

    def test_counts(self):
        truth = build_map()
        assert truth.prefix_count == 3
        assert truth.asn_count == 3


class TestNoisyASMap:
    def test_deterministic_per_address(self):
        noisy = NoisyASMap(build_map(), seed=5, miss_rate=0.3, misattribution_rate=0.3)
        addr = parse_addr("62.0.1.1")
        first = noisy.lookup(addr)
        assert all(noisy.lookup(addr) == first for _ in range(10))

    def test_noise_rates_approximate(self):
        noisy = NoisyASMap(build_map(), seed=1, miss_rate=0.1, misattribution_rate=0.1)
        misses = wrong = right = 0
        for index in range(5000):
            addr = parse_addr("62.0.0.0") + index
            result = noisy.lookup(addr)
            if result == UNKNOWN_ASN:
                misses += 1
            elif result != 100:
                wrong += 1
            else:
                right += 1
        assert 0.06 < misses / 5000 < 0.14
        assert 0.06 < wrong / 5000 < 0.14
        assert right > 3500

    def test_zero_noise_is_truth(self):
        noisy = NoisyASMap(build_map(), miss_rate=0.0, misattribution_rate=0.0)
        assert noisy.lookup(parse_addr("62.1.2.3")) == 200

    def test_unknown_stays_unknown(self):
        noisy = NoisyASMap(build_map(), miss_rate=0.0, misattribution_rate=0.0)
        assert noisy.lookup(parse_addr("9.9.9.9")) == UNKNOWN_ASN


class TestBoundaryClassification:
    def test_interior_hop(self):
        verdict = classify_hop([100, 100, 100], 1)
        assert not verdict.is_boundary
        assert verdict.determinate

    def test_boundary_hop(self):
        verdict = classify_hop([100, 100, 200], 2)
        assert verdict.is_boundary
        assert verdict.determinate

    def test_first_hop_is_not_boundary(self):
        verdict = classify_hop([100, 200], 0)
        assert not verdict.is_boundary
        assert verdict.determinate

    def test_unknown_here_is_indeterminate(self):
        verdict = classify_hop([100, UNKNOWN_ASN, 200], 1)
        assert not verdict.determinate

    def test_unknown_predecessors_skipped(self):
        """Conventional traceroute analysis: skip unknown hops when
        finding the previous AS."""
        verdict = classify_hop([100, UNKNOWN_ASN, 200], 2)
        assert verdict.is_boundary
        assert verdict.determinate
        same = classify_hop([100, UNKNOWN_ASN, 100], 2)
        assert not same.is_boundary

    def test_all_unknown_before_is_determinate_non_boundary(self):
        verdict = classify_hop([UNKNOWN_ASN, 100], 1)
        assert verdict.determinate
        assert not verdict.is_boundary

    def test_index_out_of_range(self):
        with pytest.raises(IndexError):
            classify_hop([100], 5)


class TestBoundaryFraction:
    def test_simple_fraction(self):
        paths = [[100, 100, 200, 200], [100, 300, 300, 300]]
        flagged = [
            [False, False, True, False],  # boundary strip
            [False, False, True, False],  # interior strip
        ]
        fraction, boundary, determinate = boundary_fraction(paths, flagged)
        assert (boundary, determinate) == (1, 2)
        assert fraction == pytest.approx(0.5)

    def test_indeterminate_excluded(self):
        paths = [[UNKNOWN_ASN, UNKNOWN_ASN]]
        flagged = [[False, True]]
        fraction, boundary, determinate = boundary_fraction(paths, flagged)
        assert determinate == 0
        assert fraction == 0.0

    def test_parallel_validation(self):
        with pytest.raises(ValueError):
            boundary_fraction([[100]], [[True], [False]])
        with pytest.raises(ValueError):
            boundary_fraction([[100]], [[True, False]])
