"""Tests for regions and the synthetic geolocation database."""

import random

import pytest

from repro.geo.database import GeoDatabase, UNKNOWN_RECORD
from repro.geo.regions import (
    COUNTRIES,
    PAPER_REGION_COUNTS,
    PAPER_TOTAL_SERVERS,
    Region,
    countries_in_region,
    country_by_code,
)
from repro.netsim.ipv4 import Prefix, parse_addr


class TestRegions:
    def test_paper_counts_sum_to_total(self):
        assert sum(PAPER_REGION_COUNTS.values()) == PAPER_TOTAL_SERVERS == 2500

    def test_paper_counts_match_table1(self):
        assert PAPER_REGION_COUNTS[Region.EUROPE] == 1664
        assert PAPER_REGION_COUNTS[Region.NORTH_AMERICA] == 522
        assert PAPER_REGION_COUNTS[Region.ASIA] == 190
        assert PAPER_REGION_COUNTS[Region.AUSTRALIA] == 68
        assert PAPER_REGION_COUNTS[Region.SOUTH_AMERICA] == 32
        assert PAPER_REGION_COUNTS[Region.AFRICA] == 22
        assert PAPER_REGION_COUNTS[Region.UNKNOWN] == 2

    def test_ordered_matches_table_rows(self):
        assert [r.value for r in Region.ordered()] == [
            "Africa",
            "Asia",
            "Australia",
            "Europe",
            "North America",
            "South America",
            "Unknown",
        ]

    def test_every_populated_region_has_countries(self):
        for region, count in PAPER_REGION_COUNTS.items():
            if region is Region.UNKNOWN or count == 0:
                continue
            assert countries_in_region(region), region

    def test_country_by_code(self):
        assert country_by_code("de").name == "Germany"
        assert country_by_code("DE").name == "Germany"
        assert country_by_code("zz") is None

    def test_country_codes_unique(self):
        codes = [c.code for c in COUNTRIES]
        assert len(codes) == len(set(codes))

    def test_coordinates_plausible(self):
        for country in COUNTRIES:
            assert -90 <= country.latitude <= 90
            assert -180 <= country.longitude <= 180


class TestGeoDatabase:
    def test_lookup_registered_country(self):
        db = GeoDatabase()
        germany = country_by_code("de")
        db.register_country(Prefix.parse("62.1.0.0/16"), germany)
        record = db.lookup(parse_addr("62.1.3.4"))
        assert record.country_code == "de"
        assert record.region is Region.EUROPE

    def test_unregistered_is_unknown(self):
        db = GeoDatabase()
        assert db.lookup(parse_addr("8.8.8.8")) is UNKNOWN_RECORD
        assert db.region_of(parse_addr("8.8.8.8")) is Region.UNKNOWN

    def test_register_unknown(self):
        db = GeoDatabase()
        db.register_country(Prefix.parse("62.1.0.0/16"), country_by_code("de"))
        db.register_unknown(Prefix.parse("62.1.5.0/24"))
        # Longest prefix: the /24 unknown shadows the /16 country.
        assert db.region_of(parse_addr("62.1.5.9")) is Region.UNKNOWN
        assert db.region_of(parse_addr("62.1.6.9")) is Region.EUROPE

    def test_scatter_stays_in_bounds(self):
        db = GeoDatabase()
        rng = random.Random(1)
        for index in range(100):
            record = db.register_country(
                Prefix.parse(f"62.{index}.0.0/16"),
                country_by_code("se"),
                rng=rng,
                scatter_degrees=5.0,
            )
            assert -85 <= record.latitude <= 85
            assert -180 <= record.longitude <= 180

    def test_scatter_produces_spread(self):
        db = GeoDatabase()
        rng = random.Random(2)
        points = {
            (
                db.register_country(
                    Prefix.parse(f"24.{i}.0.0/16"), country_by_code("us"), rng=rng
                ).latitude
            )
            for i in range(20)
        }
        assert len(points) > 10

    def test_len_counts_registrations(self):
        db = GeoDatabase()
        db.register_unknown(Prefix.parse("10.0.0.0/24"))
        db.register_unknown(Prefix.parse("10.0.1.0/24"))
        assert len(db) == 2
