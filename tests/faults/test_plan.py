"""FaultEvent/FaultPlan value semantics and plan generation.

A plan is the determinism contract object: immutable, hashable,
canonically ordered, serialisable, and a pure function of
``(world params, profile, chaos seed)``.
"""

import pytest

from repro.faults import (
    FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    LINK_FLAP,
    NTP_BROWNOUT,
    PROFILES,
    ROUTER_BLACKHOLE,
    generate_fault_plan,
    merge_plans,
    resolve_profile,
)


def _event(kind=LINK_FLAP, epoch=0, target="a->b", **kw):
    return FaultEvent(kind=kind, epoch=epoch, target=target, **kw)


class TestFaultEvent:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent(kind="meteor_strike", epoch=0, target="a->b")

    def test_rejects_negative_epoch(self):
        with pytest.raises(ValueError, match="epoch"):
            _event(epoch=-1)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError, match="window"):
            _event(start=-1.0)
        with pytest.raises(ValueError, match="window"):
            _event(duration=0.0)

    def test_roundtrips_through_dict(self):
        event = _event(start=12.5, duration=60.0, magnitude=0.9)
        assert FaultEvent.from_dict(event.to_dict()) == event

    def test_default_window_is_whole_epoch(self):
        event = _event()
        assert event.start == 0.0
        assert event.duration == float("inf")


class TestFaultPlan:
    def test_events_sorted_canonically(self):
        early = _event(epoch=0)
        late = _event(epoch=5)
        plan = FaultPlan(events=(late, early))
        assert plan.events == (early, late)

    def test_equal_plans_hash_equal(self):
        a = FaultPlan(events=(_event(epoch=2), _event(epoch=1)))
        b = FaultPlan(events=(_event(epoch=1), _event(epoch=2)))
        assert a == b
        assert hash(a) == hash(b)

    def test_events_for_epoch_partitions(self):
        plan = FaultPlan(
            events=(
                _event(epoch=0),
                _event(epoch=0, kind=NTP_BROWNOUT, target=123),
                _event(epoch=3),
            )
        )
        assert len(plan.events_for_epoch(0)) == 2
        assert len(plan.events_for_epoch(3)) == 1
        assert plan.events_for_epoch(7) == ()
        assert plan.epochs_touched == 2

    def test_roundtrips_through_dict(self):
        plan = FaultPlan(
            events=(_event(), _event(epoch=1, kind=NTP_BROWNOUT, target=42)),
            profile="default",
            chaos_seed=9,
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_summary_counts_by_kind(self):
        plan = FaultPlan(events=(_event(), _event(epoch=1), _event(epoch=2, kind=NTP_BROWNOUT, target=1)))
        summary = plan.summary()
        assert summary["events"] == 3
        assert summary["by_kind"] == {LINK_FLAP: 2, NTP_BROWNOUT: 1}

    def test_merge_plans_unions_events(self):
        a = FaultPlan(events=(_event(epoch=0),), profile="light")
        b = FaultPlan(events=(_event(epoch=1),), profile="heavy")
        merged = merge_plans([a, b])
        assert len(merged) == 2
        assert merged.profile == "light+heavy"


class TestProfiles:
    def test_known_profiles(self):
        assert {"light", "default", "heavy", "reroute"} <= set(PROFILES)

    def test_resolve_by_name_and_passthrough(self):
        default = resolve_profile("default")
        assert resolve_profile(default) is default

    def test_unknown_profile_raises(self):
        with pytest.raises(ValueError, match="unknown chaos profile"):
            resolve_profile("apocalypse")

    def test_profile_rates_validated(self):
        from repro.faults import ChaosProfile

        with pytest.raises(ValueError, match="out of range"):
            ChaosProfile(name="bad", link_flap_rate=1.5)


class TestGeneration:
    def test_deterministic_for_same_inputs(self, shared_world):
        a = generate_fault_plan(shared_world, profile="default", chaos_seed=7)
        b = generate_fault_plan(shared_world, profile="default", chaos_seed=7)
        assert a == b
        assert hash(a) == hash(b)

    def test_chaos_seed_changes_plan(self, shared_world):
        a = generate_fault_plan(shared_world, profile="default", chaos_seed=1)
        b = generate_fault_plan(shared_world, profile="default", chaos_seed=2)
        assert a != b

    def test_profile_changes_plan(self, shared_world):
        light = generate_fault_plan(shared_world, profile="light", chaos_seed=1)
        heavy = generate_fault_plan(shared_world, profile="heavy", chaos_seed=1)
        assert len(heavy) > len(light)

    def test_events_use_known_kinds_and_valid_epochs(self, shared_world):
        plan = generate_fault_plan(shared_world, profile="heavy", chaos_seed=3)
        assert plan.events, "heavy profile produced an empty plan"
        epochs = shared_world.params.schedule.total_traces + len(
            shared_world.vantage_hosts
        )
        for event in plan.events:
            assert event.kind in FAULT_KINDS
            assert 0 <= event.epoch < epochs

    def test_measurement_apparatus_never_blackholed(self, shared_world):
        plan = generate_fault_plan(shared_world, profile="reroute", chaos_seed=5)
        protected = set()
        for info in shared_world.vantage_as.values():
            protected.update(info.router_ids)
        protected.update(shared_world._infra_as.router_ids)
        blackholed = {
            event.target
            for event in plan.events
            if event.kind == ROUTER_BLACKHOLE
        }
        assert blackholed, "reroute profile scheduled no blackholes"
        assert not blackholed & protected
