"""FaultInjector: installation, reroute, reversion, metrics.

These tests drive :meth:`SyntheticInternet.begin_epoch` with
hand-built plans against a private world and verify that every
impairment is installed exactly for its epoch and fully reverted
afterwards — the pristine-baseline property the hermetic-epoch
contract depends on.
"""

import pytest

from repro.faults import (
    BLEACH_OFF,
    BLEACH_ON,
    DELAY_SPIKE,
    FaultEvent,
    FaultPlan,
    LINK_FLAP,
    NTP_BROWNOUT,
    ROUTER_BLACKHOLE,
    SuppressedPolicy,
    WindowedPolicy,
)
from repro.netsim.errors import RoutingError
from repro.netsim.middlebox import ECTBleacher


def _plan(*events):
    return FaultPlan(events=tuple(events))


def _some_link_id(world):
    src, dst = next(iter(world.topology.graph.edges))
    return f"{src}->{dst}"


class TestLinkFaults:
    def test_flap_installed_and_reverted(self, fresh_world):
        link_id = _some_link_id(fresh_world)
        src, dst = link_id.split("->")
        link = fresh_world.topology.graph.edges[src, dst]["link"]
        fresh_world.install_fault_plan(
            _plan(FaultEvent(kind=LINK_FLAP, epoch=1, target=link_id, magnitude=0.9))
        )
        fresh_world.begin_epoch(0)
        assert link.fault is None
        fresh_world.begin_epoch(1)
        assert link.fault is not None
        assert link.fault.loss_probability == 0.9
        assert link.fault.active(), "whole-epoch window should be active"
        fresh_world.begin_epoch(2)
        assert link.fault is None

    def test_delay_spike_adds_delay(self, fresh_world):
        link_id = _some_link_id(fresh_world)
        src, dst = link_id.split("->")
        link = fresh_world.topology.graph.edges[src, dst]["link"]
        fresh_world.install_fault_plan(
            _plan(
                FaultEvent(
                    kind=DELAY_SPIKE, epoch=0, target=link_id, magnitude=0.35
                )
            )
        )
        fresh_world.begin_epoch(0)
        assert link.fault.extra_delay == 0.35
        assert link.fault.loss_probability == 0.0

    def test_unknown_link_ignored(self, fresh_world):
        fresh_world.install_fault_plan(
            _plan(FaultEvent(kind=LINK_FLAP, epoch=0, target="no->where"))
        )
        fresh_world.begin_epoch(0)  # must not raise


class TestBlackholes:
    def _transit_router_on_some_path(self, world):
        transit = {
            router_id
            for info in world.transit_as
            for router_id in info.router_ids
        }
        vantage = next(iter(world.vantage_hosts.values()))
        for server in world.servers:
            hops = world.network.hops_between(
                vantage.router_id, server.host.router_id
            )
            for router, _link in hops[1:-1]:
                if router.router_id in transit:
                    return vantage, server, router.router_id
        pytest.skip("no mid-path transit router found at this scale")

    def test_reroute_invalidates_hop_cache(self, fresh_world):
        vantage, server, victim = self._transit_router_on_some_path(fresh_world)
        fresh_world.install_fault_plan(
            _plan(FaultEvent(kind=ROUTER_BLACKHOLE, epoch=1, target=victim))
        )
        fresh_world.begin_epoch(0)
        before = fresh_world.network.hops_between(
            vantage.router_id, server.host.router_id
        )
        assert victim in {router.router_id for router, _ in before}

        fresh_world.begin_epoch(1)
        assert fresh_world.network.excluded_routers == {victim}
        try:
            rerouted = fresh_world.network.hops_between(
                vantage.router_id, server.host.router_id
            )
        except RoutingError:
            rerouted = ()  # disconnection is a legitimate outcome
        assert victim not in {router.router_id for router, _ in rerouted}

        fresh_world.begin_epoch(2)
        assert fresh_world.network.excluded_routers == frozenset()
        restored = fresh_world.network.hops_between(
            vantage.router_id, server.host.router_id
        )
        assert restored == before

    def test_unknown_router_ignored(self, fresh_world):
        fresh_world.install_fault_plan(
            _plan(FaultEvent(kind=ROUTER_BLACKHOLE, epoch=0, target="as999-r9"))
        )
        fresh_world.begin_epoch(0)
        assert fresh_world.network.excluded_routers == frozenset()


class TestPolicyToggles:
    def test_bleach_on_appends_windowed_policy(self, fresh_world):
        victim = next(
            rid
            for rid in sorted(fresh_world.topology.routers)
            if rid not in fresh_world.ground_truth.bleacher_routers
        )
        router = fresh_world.topology.routers[victim]
        baseline = list(router.middleboxes)
        fresh_world.install_fault_plan(
            _plan(
                FaultEvent(kind=BLEACH_ON, epoch=0, target=victim, magnitude=1.0)
            )
        )
        fresh_world.begin_epoch(0)
        added = [box for box in router.middleboxes if box not in baseline]
        assert len(added) == 1
        assert isinstance(added[0], WindowedPolicy)
        assert isinstance(added[0].inner, ECTBleacher)
        fresh_world.begin_epoch(1)
        assert router.middleboxes == baseline

    def test_bleach_off_suppresses_deployed_bleacher(self, fresh_world):
        victim = sorted(fresh_world.ground_truth.bleacher_routers)[0]
        router = fresh_world.topology.routers[victim]
        baseline = list(router.middleboxes)
        fresh_world.install_fault_plan(
            _plan(FaultEvent(kind=BLEACH_OFF, epoch=0, target=victim))
        )
        fresh_world.begin_epoch(0)
        suppressed = [
            box for box in router.middleboxes if isinstance(box, SuppressedPolicy)
        ]
        assert suppressed, "deployed bleacher was not wrapped"
        assert all(
            isinstance(box.inner, ECTBleacher) for box in suppressed
        )
        fresh_world.begin_epoch(1)
        assert router.middleboxes == baseline

    def test_bleach_off_on_clean_router_is_noop(self, fresh_world):
        victim = next(
            rid
            for rid in sorted(fresh_world.topology.routers)
            if rid not in fresh_world.ground_truth.bleacher_routers
        )
        fresh_world.install_fault_plan(
            _plan(FaultEvent(kind=BLEACH_OFF, epoch=0, target=victim))
        )
        fresh_world.begin_epoch(0)
        assert not any(
            isinstance(box, SuppressedPolicy)
            for box in fresh_world.topology.routers[victim].middleboxes
        )


class TestBrownouts:
    def test_brownout_installs_inbound_udp_blackhole(self, fresh_world):
        server = fresh_world.servers[0]
        baseline = list(server.host.inbound_filters)
        fresh_world.install_fault_plan(
            _plan(FaultEvent(kind=NTP_BROWNOUT, epoch=0, target=server.addr))
        )
        fresh_world.begin_epoch(0)
        added = [
            box for box in server.host.inbound_filters if box not in baseline
        ]
        assert len(added) == 1
        assert isinstance(added[0], WindowedPolicy)
        fresh_world.begin_epoch(1)
        assert server.host.inbound_filters == baseline

    def test_unknown_server_ignored(self, fresh_world):
        fresh_world.install_fault_plan(
            _plan(FaultEvent(kind=NTP_BROWNOUT, epoch=0, target=1))
        )
        fresh_world.begin_epoch(0)  # must not raise


class TestLifecycle:
    def test_detach_reverts_current_epoch(self, fresh_world):
        link_id = _some_link_id(fresh_world)
        src, dst = link_id.split("->")
        link = fresh_world.topology.graph.edges[src, dst]["link"]
        fresh_world.install_fault_plan(
            _plan(FaultEvent(kind=LINK_FLAP, epoch=0, target=link_id))
        )
        fresh_world.begin_epoch(0)
        assert link.fault is not None
        fresh_world.install_fault_plan(None)
        assert link.fault is None
        assert fresh_world.fault_injector is None

    def test_empty_plan_means_no_injector(self, fresh_world):
        fresh_world.install_fault_plan(FaultPlan())
        assert fresh_world.fault_injector is None

    def test_fault_metrics_surface_when_observed(self, fresh_world):
        from repro.obs import MetricsRegistry

        link_id = _some_link_id(fresh_world)
        registry = MetricsRegistry()
        fresh_world.network.set_observability(registry)
        try:
            fresh_world.install_fault_plan(
                _plan(FaultEvent(kind=LINK_FLAP, epoch=0, target=link_id))
            )
            fresh_world.begin_epoch(0)
        finally:
            fresh_world.network.set_observability(None)
            fresh_world.install_fault_plan(None)
        counters = registry.snapshot()["counters"]
        assert counters.get("faults.link_flap") == 1
        assert counters.get("faults.epochs_impaired") == 1
