"""The chaotic determinism contract: faults don't break bit-identity.

A sharded study given a fixed :class:`FaultPlan` must merge to exactly
the sequential chaotic study — traces, traceroutes, and merged metrics
— because every fault is installed at epoch entry as a pure function
of ``(params, epoch index, plan)``.  And the chaos must be real: the
chaotic study has to differ from the unfaulted baseline.
"""

import pytest

from repro.faults import generate_fault_plan
from repro.study import Study

pytestmark = [pytest.mark.slow, pytest.mark.chaos]

SCALE = 0.02
SEED = 11
CHAOS_SEED = 3


@pytest.fixture(scope="module")
def fault_plan():
    from repro.scenario.internet import SyntheticInternet
    from repro.scenario.parameters import params_for_scale

    world = SyntheticInternet(params_for_scale(SCALE, SEED))
    return generate_fault_plan(world, profile="heavy", chaos_seed=CHAOS_SEED)


@pytest.fixture(scope="module")
def sequential_chaotic(fault_plan):
    return Study.run(
        scale=SCALE, seed=SEED, workers=0, faults=fault_plan, collect_metrics=True
    )


@pytest.fixture(scope="module")
def sharded_chaotic(fault_plan):
    return Study.run(
        scale=SCALE, seed=SEED, workers=4, faults=fault_plan, collect_metrics=True
    )


def _export_bytes(study, directory):
    study.save(directory)
    return {
        name: (directory / name).read_bytes()
        for name in (
            "summary.json",
            "traces.json",
            "traceroutes.json",
            "metrics.json",
        )
    }


def test_sharded_chaotic_run_bit_identical(
    sequential_chaotic, sharded_chaotic, tmp_path
):
    assert sharded_chaotic.report() == sequential_chaotic.report()
    assert _export_bytes(sharded_chaotic, tmp_path / "par") == _export_bytes(
        sequential_chaotic, tmp_path / "seq"
    )


def test_chaos_actually_perturbs_the_study(sequential_chaotic):
    baseline = Study.run(scale=SCALE, seed=SEED, workers=0)
    assert (
        sequential_chaotic.traces.to_dict() != baseline.traces.to_dict()
    ), "heavy chaos left every trace untouched"


def test_fault_metrics_merge_identically(sequential_chaotic, sharded_chaotic):
    seq = sequential_chaotic.metrics["counters"]
    par = sharded_chaotic.metrics["counters"]
    fault_counters = {k: v for k, v in seq.items() if k.startswith("faults.")}
    assert fault_counters, "chaotic run recorded no faults.* counters"
    assert fault_counters == {
        k: v for k, v in par.items() if k.startswith("faults.")
    }


def test_chaos_recorded_in_telemetry_and_manifest(
    sequential_chaotic, sharded_chaotic, fault_plan, tmp_path
):
    expected = fault_plan.summary()
    assert sequential_chaotic.telemetry.chaos == expected
    assert sharded_chaotic.telemetry.chaos == expected

    import json

    sequential_chaotic.save(tmp_path / "archive")
    manifest = json.loads((tmp_path / "archive" / "manifest.json").read_text())
    assert manifest["chaos"] == expected
    telemetry = json.loads((tmp_path / "archive" / "telemetry.json").read_text())
    assert telemetry["chaos"] == expected


def test_profile_name_accepted_directly():
    study = Study.run(
        scale=SCALE,
        seed=SEED,
        workers=0,
        traceroutes=False,
        faults="reroute",
        chaos_seed=CHAOS_SEED,
        collect_metrics=True,
    )
    counters = study.metrics["counters"]
    assert counters.get("faults.router_blackhole", 0) > 0
