"""Sim-time fault windows and the windowed impairment wrappers."""

import random

import pytest

from repro.faults import FaultWindow, LinkFault, SuppressedPolicy, WindowedPolicy
from repro.netsim.ecn import ECN, replace_ecn
from repro.netsim.ipv4 import IPv4Packet, PROTO_UDP, parse_addr
from repro.netsim.middlebox import ECTBleacher


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now


def _packet(ecn=ECN.ECT_0):
    return IPv4Packet(
        src=parse_addr("192.0.2.1"),
        dst=parse_addr("198.51.100.1"),
        protocol=PROTO_UDP,
        tos=replace_ecn(0, ecn),
    )


class TestFaultWindow:
    def test_requires_bound_clock(self):
        window = FaultWindow(start=0.0, end=10.0)
        with pytest.raises(RuntimeError, match="no clock"):
            window.active()

    def test_half_open_interval(self):
        clock = FakeClock()
        window = FaultWindow(start=5.0, end=10.0)
        window.bind_clock(clock)
        for now, expected in ((4.999, False), (5.0, True), (9.999, True), (10.0, False)):
            clock.now = now
            assert window.active() is expected

    def test_infinite_window_covers_everything(self):
        clock = FakeClock(now=1e12)
        window = FaultWindow(start=0.0, end=float("inf"))
        window.bind_clock(clock)
        assert window.active()


class TestLinkFault:
    def _fault(self, clock, **kw):
        window = FaultWindow(start=0.0, end=100.0)
        window.bind_clock(clock)
        return LinkFault(window=window, **kw)

    def test_certain_loss_inside_window(self):
        fault = self._fault(FakeClock(now=50.0), loss_probability=1.0)
        assert fault.active()
        assert fault.sample_loss(random.Random(1))

    def test_no_loss_when_probability_zero(self):
        fault = self._fault(FakeClock(now=50.0), extra_delay=0.25)
        assert fault.active()
        assert not fault.sample_loss(random.Random(1))
        assert fault.extra_delay == 0.25

    def test_inactive_outside_window(self):
        fault = self._fault(FakeClock(now=200.0), loss_probability=1.0)
        assert not fault.active()


class TestWindowedPolicies:
    def _window(self, clock, start=0.0, end=100.0):
        window = FaultWindow(start=start, end=end)
        window.bind_clock(clock)
        return window

    def test_windowed_policy_applies_only_inside(self):
        clock = FakeClock(now=50.0)
        policy = WindowedPolicy(
            inner=ECTBleacher(name="chaos-bleach"),
            window=self._window(clock),
        )
        rng = random.Random(1)
        inside = policy.process(_packet(), rng)
        assert inside.packet.ecn is ECN.NOT_ECT
        clock.now = 150.0
        outside = policy.process(_packet(), rng)
        assert outside.packet.ecn is ECN.ECT_0

    def test_windowed_policy_reports_inner_name(self):
        policy = WindowedPolicy(
            inner=ECTBleacher(name="chaos-bleach"),
            window=self._window(FakeClock()),
        )
        assert policy.name == "chaos-bleach"

    def test_windowed_policy_requires_both_fields(self):
        with pytest.raises(ValueError):
            WindowedPolicy(inner=ECTBleacher())
        with pytest.raises(ValueError):
            WindowedPolicy(window=self._window(FakeClock()))

    def test_suppressed_policy_bypasses_inside(self):
        clock = FakeClock(now=50.0)
        policy = SuppressedPolicy(
            inner=ECTBleacher(name="bleach"),
            window=self._window(clock),
        )
        rng = random.Random(1)
        inside = policy.process(_packet(), rng)
        assert inside.packet.ecn is ECN.ECT_0, "policy should be dormant in-window"
        clock.now = 150.0
        outside = policy.process(_packet(), rng)
        assert outside.packet.ecn is ECN.NOT_ECT
