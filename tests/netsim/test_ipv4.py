"""Tests for IPv4 addressing and the header codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netsim.checksum import verify_checksum
from repro.netsim.ecn import ECN
from repro.netsim.errors import AddressError, CodecError
from repro.netsim.ipv4 import (
    HEADER_LEN,
    IPv4Packet,
    PROTO_UDP,
    Prefix,
    format_addr,
    parse_addr,
)


class TestAddresses:
    def test_parse_format_roundtrip(self):
        assert format_addr(parse_addr("192.0.2.33")) == "192.0.2.33"

    def test_parse_extremes(self):
        assert parse_addr("0.0.0.0") == 0
        assert parse_addr("255.255.255.255") == 0xFFFFFFFF

    @pytest.mark.parametrize(
        "bad", ["", "1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "1..2.3"]
    )
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(AddressError):
            parse_addr(bad)

    def test_format_rejects_out_of_range(self):
        with pytest.raises(AddressError):
            format_addr(-1)
        with pytest.raises(AddressError):
            format_addr(1 << 32)


@given(st.integers(0, 0xFFFFFFFF))
def test_addr_roundtrip_property(addr):
    assert parse_addr(format_addr(addr)) == addr


class TestPrefix:
    def test_parse(self):
        prefix = Prefix.parse("10.1.0.0/16")
        assert prefix.network == parse_addr("10.1.0.0")
        assert prefix.length == 16

    def test_contains(self):
        prefix = Prefix.parse("10.1.0.0/16")
        assert prefix.contains(parse_addr("10.1.200.7"))
        assert not prefix.contains(parse_addr("10.2.0.1"))

    def test_host(self):
        prefix = Prefix.parse("10.1.0.0/24")
        assert format_addr(prefix.host(5)) == "10.1.0.5"

    def test_host_out_of_range(self):
        with pytest.raises(AddressError):
            Prefix.parse("10.1.0.0/24").host(256)

    def test_host_bits_rejected(self):
        with pytest.raises(AddressError):
            Prefix(parse_addr("10.1.0.1"), 16)

    def test_non_numeric_mask_raises_address_error(self):
        # A junk mask must surface as AddressError like every other
        # malformed input, not leak the bare ValueError from int().
        with pytest.raises(AddressError, match="bad prefix length"):
            Prefix.parse("10.1.0.0/sixteen")

    def test_size(self):
        assert Prefix.parse("10.0.0.0/8").size == 1 << 24
        assert Prefix.parse("10.0.0.1/32").size == 1

    def test_zero_length_prefix_contains_everything(self):
        assert Prefix(0, 0).contains(parse_addr("203.0.113.9"))

    def test_str(self):
        assert str(Prefix.parse("62.3.0.0/16")) == "62.3.0.0/16"


class TestHeaderCodec:
    def _packet(self, **overrides):
        fields = dict(
            src=parse_addr("192.0.2.1"),
            dst=parse_addr("198.51.100.2"),
            protocol=PROTO_UDP,
            payload=b"hello world",
            ttl=37,
            tos=0b0000_0010,  # ECT(0)
            ident=0x1234,
        )
        fields.update(overrides)
        return IPv4Packet(**fields)

    def test_encode_decode_roundtrip(self):
        packet = self._packet()
        decoded = IPv4Packet.decode(packet.encode())
        assert decoded == packet

    def test_header_checksum_valid_on_wire(self):
        wire = self._packet().encode()
        assert verify_checksum(wire[:HEADER_LEN])

    def test_checksum_corruption_detected(self):
        wire = bytearray(self._packet().encode())
        wire[8] ^= 0x01  # flip a TTL bit
        with pytest.raises(CodecError):
            IPv4Packet.decode(bytes(wire))

    def test_decode_without_verification_accepts_corruption(self):
        wire = bytearray(self._packet().encode())
        wire[8] ^= 0x01
        decoded = IPv4Packet.decode(bytes(wire), verify=False)
        assert decoded.ttl == 37 ^ 0x01

    def test_truncated_header_rejected(self):
        with pytest.raises(CodecError):
            IPv4Packet.decode(b"\x45\x00\x00")

    def test_non_v4_rejected(self):
        wire = bytearray(self._packet().encode())
        wire[0] = (6 << 4) | 5
        with pytest.raises(CodecError):
            IPv4Packet.decode(bytes(wire))

    def test_total_length(self):
        assert self._packet().total_length == HEADER_LEN + 11

    def test_ecn_property(self):
        assert self._packet().ecn is ECN.ECT_0

    def test_with_ecn_returns_new_packet(self):
        packet = self._packet(tos=0b1010_1111)  # DSCP 43, ECN-CE
        cleared = packet.with_ecn(ECN.NOT_ECT)
        assert cleared.ecn is ECN.NOT_ECT
        assert cleared.tos >> 2 == packet.tos >> 2
        assert packet.ecn is ECN.CE  # original untouched

    def test_ttl_out_of_range_rejected(self):
        with pytest.raises(CodecError):
            self._packet(ttl=256).encode()

    def test_ident_out_of_range_rejected(self):
        with pytest.raises(CodecError):
            self._packet(ident=0x10000).encode()

    def test_dont_fragment_flag_roundtrip(self):
        for flag in (True, False):
            packet = self._packet(dont_fragment=flag)
            assert IPv4Packet.decode(packet.encode()).dont_fragment is flag

    def test_truncated_payload_decodes_header(self):
        """ICMP quotations truncate payloads; the header must decode."""
        packet = self._packet(payload=b"x" * 100)
        wire = packet.encode()[: HEADER_LEN + 8]
        quoted = IPv4Packet.decode(wire, verify=False)
        assert quoted.src == packet.src
        assert quoted.ecn is ECN.ECT_0
        assert quoted.payload == b"x" * 8


@given(
    src=st.integers(0, 0xFFFFFFFF),
    dst=st.integers(0, 0xFFFFFFFF),
    ttl=st.integers(0, 255),
    tos=st.integers(0, 255),
    ident=st.integers(0, 0xFFFF),
    payload=st.binary(max_size=64),
)
def test_codec_roundtrip_property(src, dst, ttl, tos, ident, payload):
    packet = IPv4Packet(
        src=src, dst=dst, protocol=17, payload=payload, ttl=ttl, tos=tos, ident=ident
    )
    assert IPv4Packet.decode(packet.encode()) == packet
