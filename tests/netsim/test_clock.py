"""Tests for the simulated clock."""

import pytest

from repro.netsim.clock import (
    DEFAULT_EPOCH_ORIGIN,
    NTP_UNIX_EPOCH_DELTA,
    SimClock,
)
from repro.netsim.errors import SimulationError


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advance_to(self):
        clock = SimClock()
        clock.advance_to(1.5)
        assert clock.now == 1.5

    def test_advance_by(self):
        clock = SimClock()
        clock.advance_by(0.25)
        clock.advance_by(0.25)
        assert clock.now == 0.5

    def test_advance_to_same_time_is_allowed(self):
        clock = SimClock()
        clock.advance_to(1.0)
        clock.advance_to(1.0)
        assert clock.now == 1.0

    def test_cannot_go_backwards(self):
        clock = SimClock()
        clock.advance_to(2.0)
        with pytest.raises(SimulationError):
            clock.advance_to(1.0)

    def test_negative_delta_rejected(self):
        with pytest.raises(SimulationError):
            SimClock().advance_by(-0.1)

    def test_unix_time_tracks_origin(self):
        clock = SimClock(origin=1000.0)
        clock.advance_to(5.0)
        assert clock.unix_time() == 1005.0

    def test_default_origin_is_2015(self):
        # 2015-04-01: the start of the measurement campaign.
        assert DEFAULT_EPOCH_ORIGIN == 1_427_846_400.0

    def test_ntp_time_offset(self):
        clock = SimClock(origin=0.0)
        assert clock.ntp_time() == NTP_UNIX_EPOCH_DELTA

    def test_ntp_epoch_delta_value(self):
        # 70 years including 17 leap days.
        assert NTP_UNIX_EPOCH_DELTA == (70 * 365 + 17) * 86400
