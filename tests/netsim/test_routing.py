"""Tests for the prefix trie and shortest-path routing."""

import networkx as nx
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netsim.errors import RoutingError
from repro.netsim.ipv4 import Prefix, parse_addr
from repro.netsim.link import Link
from repro.netsim.routing import PrefixTrie, RoutingTable


class TestPrefixTrie:
    def test_exact_lookup(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("10.0.0.0/8"), "ten")
        assert trie.lookup(parse_addr("10.1.2.3")) == "ten"

    def test_longest_prefix_wins(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("10.0.0.0/8"), "short")
        trie.insert(Prefix.parse("10.1.0.0/16"), "long")
        assert trie.lookup(parse_addr("10.1.9.9")) == "long"
        assert trie.lookup(parse_addr("10.2.0.1")) == "short"

    def test_miss_raises_keyerror(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("10.0.0.0/8"), "ten")
        with pytest.raises(KeyError):
            trie.lookup(parse_addr("11.0.0.1"))

    def test_lookup_default(self):
        trie = PrefixTrie()
        assert trie.lookup_default(parse_addr("1.2.3.4"), "none") == "none"

    def test_default_route(self):
        trie = PrefixTrie()
        trie.insert(Prefix(0, 0), "default")
        trie.insert(Prefix.parse("10.0.0.0/8"), "ten")
        assert trie.lookup(parse_addr("200.1.1.1")) == "default"
        assert trie.lookup(parse_addr("10.0.0.1")) == "ten"

    def test_host_route(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("10.0.0.0/8"), "net")
        trie.insert(Prefix(parse_addr("10.5.5.5"), 32), "host")
        assert trie.lookup(parse_addr("10.5.5.5")) == "host"
        assert trie.lookup(parse_addr("10.5.5.6")) == "net"

    def test_reinsert_replaces(self):
        trie = PrefixTrie()
        prefix = Prefix.parse("10.0.0.0/8")
        trie.insert(prefix, "old")
        trie.insert(prefix, "new")
        assert trie.lookup(parse_addr("10.0.0.1")) == "new"


@given(
    st.lists(
        st.tuples(st.integers(0, 0xFFFFFFFF), st.integers(8, 28)),
        min_size=1,
        max_size=24,
    ),
    st.integers(0, 0xFFFFFFFF),
)
def test_trie_matches_linear_scan(entries, probe):
    """Longest-prefix match agrees with a brute-force reference."""
    trie = PrefixTrie()
    prefixes = []
    for raw, length in entries:
        prefix = Prefix(raw & (Prefix(0, length).mask if length else 0), length)
        trie.insert(prefix, str(prefix))
        prefixes.append(prefix)
    matches = [p for p in prefixes if p.contains(probe)]
    if matches:
        best = max(matches, key=lambda p: p.length)
        # Ties between identical prefixes are fine: identical strings.
        assert trie.lookup(probe) == str(best)
    else:
        assert trie.lookup_default(probe) is None


def build_graph(edges):
    graph = nx.DiGraph()
    for a, b in edges:
        graph.add_edge(a, b, link=Link(a, b), weight=1.0)
        graph.add_edge(b, a, link=Link(b, a), weight=1.0)
    return graph


class TestRoutingTable:
    def test_trivial_path(self):
        table = RoutingTable(build_graph([("a", "b")]))
        assert table.path("a", "a") == ("a",)
        assert table.path("a", "b") == ("a", "b")

    def test_shortest_path_chosen(self):
        # a-b-c-d versus a-x-d: the 3-hop route wins.
        table = RoutingTable(
            build_graph([("a", "b"), ("b", "c"), ("c", "d"), ("a", "x"), ("x", "d")])
        )
        assert table.path("a", "d") == ("a", "x", "d")

    def test_weights_respected(self):
        graph = build_graph([("a", "b"), ("b", "c")])
        graph.add_edge("a", "c", link=Link("a", "c"), weight=10.0)
        graph.add_edge("c", "a", link=Link("c", "a"), weight=10.0)
        table = RoutingTable(graph)
        assert table.path("a", "c") == ("a", "b", "c")

    def test_no_route_raises(self):
        graph = build_graph([("a", "b")])
        graph.add_node("island")
        table = RoutingTable(graph)
        with pytest.raises(RoutingError):
            table.path("a", "island")

    def test_unknown_node_raises(self):
        table = RoutingTable(build_graph([("a", "b")]))
        with pytest.raises(RoutingError):
            table.path("a", "ghost")

    def test_hops_yield_links(self):
        table = RoutingTable(build_graph([("a", "b"), ("b", "c")]))
        hops = list(table.hops("a", "c"))
        assert [(router, link.dst) for router, link in hops] == [
            ("a", "b"),
            ("b", "c"),
        ]

    def test_caching_returns_same_object(self):
        table = RoutingTable(build_graph([("a", "b")]))
        assert table.path("a", "b") is table.path("a", "b")

    def test_invalidate_clears_cache(self):
        graph = build_graph([("a", "b"), ("b", "c")])
        table = RoutingTable(graph)
        assert table.path("a", "c") == ("a", "b", "c")
        graph.add_edge("a", "c", link=Link("a", "c"), weight=0.1)
        table.invalidate()
        assert table.path("a", "c") == ("a", "c")
