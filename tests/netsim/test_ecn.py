"""Tests for ECN codepoints and TOS helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netsim.ecn import (
    ECN,
    dscp_from_tos,
    ecn_from_tos,
    replace_ecn,
    tos_byte,
)


class TestCodepoints:
    def test_wire_values_match_rfc3168(self):
        assert ECN.NOT_ECT == 0b00
        assert ECN.ECT_1 == 0b01
        assert ECN.ECT_0 == 0b10
        assert ECN.CE == 0b11

    def test_is_ect(self):
        assert ECN.ECT_0.is_ect
        assert ECN.ECT_1.is_ect
        assert not ECN.NOT_ECT.is_ect
        assert not ECN.CE.is_ect

    def test_is_ce(self):
        assert ECN.CE.is_ce
        assert not ECN.ECT_0.is_ce

    def test_descriptions_match_paper_terms(self):
        assert ECN.NOT_ECT.describe() == "not-ECT"
        assert ECN.ECT_0.describe() == "ECT(0)"
        assert ECN.ECT_1.describe() == "ECT(1)"
        assert ECN.CE.describe() == "ECN-CE"


class TestTOSComposition:
    def test_tos_byte_combines_fields(self):
        assert tos_byte(dscp=0b101010, ecn=ECN.ECT_0) == 0b1010_1010

    def test_default_is_zero(self):
        assert tos_byte() == 0

    def test_dscp_out_of_range(self):
        with pytest.raises(ValueError):
            tos_byte(dscp=64)

    def test_ecn_out_of_range(self):
        """Regression: ecn was silently OR-ed in, corrupting DSCP bits.

        ``tos_byte(ecn=4)`` used to produce 0b100 — leaking into the
        DSCP field — instead of rejecting the value like dscp does.
        """
        for bad in (-1, 4, 7, 256):
            with pytest.raises(ValueError):
                tos_byte(ecn=bad)

    def test_ecn_boundary_values_accepted(self):
        assert tos_byte(ecn=0) == 0
        assert tos_byte(ecn=0b11) == 0b11

    def test_replace_ecn_preserves_dscp(self):
        tos = tos_byte(dscp=0b001011, ecn=ECN.ECT_0)
        cleared = replace_ecn(tos, ECN.NOT_ECT)
        assert ecn_from_tos(cleared) is ECN.NOT_ECT
        assert dscp_from_tos(cleared) == 0b001011


@given(st.integers(0, 63), st.sampled_from(list(ECN)))
def test_compose_extract_roundtrip(dscp, ecn):
    tos = tos_byte(dscp, ecn)
    assert ecn_from_tos(tos) is ecn
    assert dscp_from_tos(tos) == dscp


@given(st.integers(0, 255), st.sampled_from(list(ECN)))
def test_replace_ecn_only_touches_low_bits(tos, ecn):
    replaced = replace_ecn(tos, ecn)
    assert replaced & 0b11 == int(ecn)
    assert replaced >> 2 == tos >> 2
