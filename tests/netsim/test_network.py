"""Tests for the network: delivery, TTL, ICMP return, mode parity."""

import pytest

from repro.netsim.ecn import ECN
from repro.netsim.errors import NetSimError
from repro.netsim.host import AccessLink, Host
from repro.netsim.icmp import TYPE_TIME_EXCEEDED
from repro.netsim.ipv4 import parse_addr
from repro.netsim.link import link_pair
from repro.netsim.middlebox import ECTBleacher, ECTDropper
from repro.netsim.network import EVENT, FAST, Network
from repro.netsim.queues import BernoulliLoss
from repro.netsim.router import Router
from repro.netsim.topology import Topology


def build_chain(mode, hops=4, seed=3, bleach_at=None, drop_at=None, loss_at=None):
    """A straight chain of ``hops`` routers with optional impairments."""
    topo = Topology()
    for index in range(hops):
        topo.add_router(
            Router(
                f"r{index}",
                asn=100 + index,
                interface_addr=parse_addr(f"10.0.{index}.1"),
            )
        )
        if index:
            loss = BernoulliLoss(1.0) if loss_at == index else None
            forward, backward = link_pair(
                f"r{index - 1}", f"r{index}", delay=0.01, loss=loss,
                reverse_loss=BernoulliLoss(0.0),
            )
            topo.add_link_pair(forward, backward)
    if bleach_at is not None:
        topo.routers[f"r{bleach_at}"].add_middlebox(ECTBleacher())
    if drop_at is not None:
        topo.routers[f"r{drop_at}"].add_middlebox(ECTDropper())
    client = topo.add_host(Host("client", parse_addr("192.0.2.1"), "r0"))
    server = topo.add_host(Host("server", parse_addr("198.51.100.1"), f"r{hops - 1}"))
    net = Network(topo, seed=seed, mode=mode)
    return net, client, server


@pytest.fixture(params=[FAST, EVENT])
def mode(request):
    return request.param


class TestDelivery:
    def test_packet_crosses_chain(self, mode):
        net, client, server = build_chain(mode)
        got = []
        server.udp_bind(123, lambda d, p, t: got.append((d.payload, t)))
        client.udp_bind(None).send(server.addr, 123, b"hello")
        net.scheduler.run()
        assert got[0][0] == b"hello"
        # Three links of 10 ms each.
        assert got[0][1] == pytest.approx(0.03)

    def test_counters(self, mode):
        net, client, server = build_chain(mode)
        server.udp_bind(123, lambda d, p, t: None)
        client.udp_bind(None).send(server.addr, 123, b"x")
        net.scheduler.run()
        assert net.counters.sent == 1
        assert net.counters.delivered == 1

    def test_unroutable_destination_counted(self, mode):
        net, client, _ = build_chain(mode)
        client.udp_bind(None).send(parse_addr("8.8.8.8"), 53, b"x")
        net.scheduler.run()
        assert net.counters.dropped_no_route == 1

    def test_ttl_decrements_per_router(self, mode):
        net, client, server = build_chain(mode)
        ttls = []
        server.add_tap(lambda d, p, t: ttls.append(p.ttl))
        client.udp_bind(None).send(server.addr, 123, b"x", ttl=64)
        net.scheduler.run()
        assert ttls == [60]  # four routers on the path


class TestMiddleboxesInPath:
    def test_bleacher_clears_mark_before_delivery(self, mode):
        net, client, server = build_chain(mode, bleach_at=2)
        marks = []
        server.add_tap(lambda d, p, t: marks.append(p.ecn))
        client.udp_bind(None).send(server.addr, 123, b"x", ecn=ECN.ECT_0)
        net.scheduler.run()
        assert marks == [ECN.NOT_ECT]

    def test_dropper_blocks_marked_packets_only(self, mode):
        net, client, server = build_chain(mode, drop_at=2)
        got = []
        server.udp_bind(123, lambda d, p, t: got.append(p.ecn))
        client.udp_bind(None).send(server.addr, 123, b"a", ecn=ECN.ECT_0)
        client.udp_bind(None).send(server.addr, 123, b"b", ecn=ECN.NOT_ECT)
        net.scheduler.run()
        assert got == [ECN.NOT_ECT]
        assert net.counters.dropped_middlebox == 1

    def test_link_loss_counted(self, mode):
        net, client, server = build_chain(mode, loss_at=2)
        got = []
        server.udp_bind(123, lambda d, p, t: got.append(d))
        client.udp_bind(None).send(server.addr, 123, b"x")
        net.scheduler.run()
        assert got == []
        assert net.counters.dropped_loss == 1


class TestICMPReturn:
    def test_ttl_expiry_generates_time_exceeded(self, mode):
        net, client, server = build_chain(mode)
        icmp = []
        client.on_icmp(lambda m, p, t: icmp.append((m, p)))
        client.udp_bind(None).send(server.addr, 33434, b"probe", ttl=2, ident=9)
        net.scheduler.run()
        message, packet = icmp[0]
        assert message.icmp_type == TYPE_TIME_EXCEEDED
        # Expired at the second router.
        assert packet.src == parse_addr("10.0.1.1")
        assert message.quoted_packet().ident == 9

    def test_icmp_round_trip_time_includes_both_directions(self, mode):
        net, client, server = build_chain(mode)
        times = []
        client.on_icmp(lambda m, p, t: times.append(t))
        client.udp_bind(None).send(server.addr, 33434, b"probe", ttl=3)
        net.scheduler.run()
        # Two links out, two links back.
        assert times[0] == pytest.approx(0.04)

    def test_expiry_at_final_router_one_hop_before_host(self, mode):
        """TTL equal to the router count expires at the access router;
        one more reaches the (silent) host — why the paper's traces
        'generally stop one hop before the destination'."""
        net, client, server = build_chain(mode, hops=4)
        icmp = []
        client.on_icmp(lambda m, p, t: icmp.append(p.src))
        client.udp_bind(None).send(server.addr, 33434, b"probe", ttl=4)
        net.scheduler.run()
        assert icmp == [parse_addr("10.0.3.1")]
        icmp.clear()
        client.udp_bind(None).send(server.addr, 33434, b"probe", ttl=5)
        net.scheduler.run()
        assert icmp == []  # delivered to host, which ignores it

    def test_silent_router_produces_no_icmp(self, mode):
        net, client, server = build_chain(mode)
        net.topology.routers["r1"].sends_icmp_errors = False
        icmp = []
        client.on_icmp(lambda m, p, t: icmp.append(m))
        client.udp_bind(None).send(server.addr, 33434, b"probe", ttl=2)
        net.scheduler.run()
        assert icmp == []
        assert net.counters.ttl_expired == 1


class TestModeParity:
    """Fast and event modes must agree on everything observable."""

    def test_same_delivery_time_and_content(self):
        results = {}
        for mode in (FAST, EVENT):
            net, client, server = build_chain(mode, seed=5)
            got = []
            server.udp_bind(123, lambda d, p, t: got.append((d.payload, round(t, 9), p.ttl)))
            client.udp_bind(None).send(server.addr, 123, b"parity", ecn=ECN.ECT_0)
            net.scheduler.run()
            results[mode] = got
        assert results[FAST] == results[EVENT]

    def test_same_icmp_observations(self):
        results = {}
        for mode in (FAST, EVENT):
            net, client, server = build_chain(mode, seed=5, bleach_at=1)
            seen = []
            client.on_icmp(
                lambda m, p, t: seen.append(
                    (p.src, m.quoted_packet().ecn, round(t, 9))
                )
            )
            for ttl in (1, 2, 3):
                client.udp_bind(None).send(
                    server.addr, 33434, b"probe", ttl=ttl, ecn=ECN.ECT_0
                )
                net.scheduler.run()
            results[mode] = seen
        assert results[FAST] == results[EVENT]
        # And the bleached mark is visible from hop 2 onward.
        assert [ecn for _, ecn, _ in results[FAST]] == [
            ECN.ECT_0,
            ECN.NOT_ECT,
            ECN.NOT_ECT,
        ]


class TestModeValidation:
    def test_unknown_mode_rejected(self):
        topo = Topology()
        topo.add_router(Router("r0", asn=1, interface_addr=1))
        with pytest.raises(NetSimError):
            Network(topo, mode="warp")
