"""Tests for loss models and AQM behaviour."""

import random

import pytest

from repro.netsim.queues import (
    AQMDecision,
    BernoulliLoss,
    GilbertElliottLoss,
    NoCongestion,
    NoLoss,
    REDQueue,
    StaticCongestion,
)


class TestLossModels:
    def test_no_loss_never_drops(self):
        rng = random.Random(0)
        model = NoLoss()
        assert not any(model.sample_loss(rng) for _ in range(1000))

    def test_bernoulli_zero_and_one(self):
        rng = random.Random(0)
        assert not any(BernoulliLoss(0.0).sample_loss(rng) for _ in range(100))
        assert all(BernoulliLoss(1.0).sample_loss(rng) for _ in range(100))

    def test_bernoulli_rate_approximation(self):
        rng = random.Random(42)
        model = BernoulliLoss(0.1)
        losses = sum(model.sample_loss(rng) for _ in range(20000))
        assert 0.08 < losses / 20000 < 0.12

    def test_bernoulli_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            BernoulliLoss(1.5)
        with pytest.raises(ValueError):
            BernoulliLoss(-0.1)

    def test_gilbert_elliott_is_bursty(self):
        """Losses under GE cluster: the conditional probability of a
        loss right after a loss far exceeds the marginal rate."""
        rng = random.Random(7)
        model = GilbertElliottLoss(
            p_good_to_bad=0.02, p_bad_to_good=0.2, loss_good=0.001, loss_bad=0.5
        )
        samples = [model.sample_loss(rng) for _ in range(50000)]
        marginal = sum(samples) / len(samples)
        after_loss = [b for a, b in zip(samples, samples[1:]) if a]
        conditional = sum(after_loss) / len(after_loss)
        assert conditional > marginal * 3

    def test_gilbert_elliott_steady_state(self):
        model = GilbertElliottLoss(
            p_good_to_bad=0.01, p_bad_to_good=0.09, loss_good=0.0, loss_bad=0.3
        )
        # 10% of time in bad state -> 3% long-run loss.
        assert model.steady_state_loss() == pytest.approx(0.03)

    def test_gilbert_elliott_empirical_matches_steady_state(self):
        rng = random.Random(3)
        model = GilbertElliottLoss(
            p_good_to_bad=0.01, p_bad_to_good=0.09, loss_good=0.0, loss_bad=0.3
        )
        expected = model.steady_state_loss()
        losses = sum(model.sample_loss(rng) for _ in range(100000))
        assert abs(losses / 100000 - expected) < 0.01


class TestStaticCongestion:
    def test_no_congestion_passes(self):
        rng = random.Random(0)
        model = NoCongestion()
        assert model.sample(rng, True) == AQMDecision.PASS
        assert model.sample(rng, False) == AQMDecision.PASS

    def test_marks_ect_drops_not_ect(self):
        """RFC 3168: an ECN queue marks ECT packets, drops the rest."""
        rng = random.Random(0)
        model = StaticCongestion(signal_probability=1.0, ecn_capable_queue=True)
        assert model.sample(rng, ect_capable=True) == AQMDecision.MARK
        assert model.sample(rng, ect_capable=False) == AQMDecision.DROP

    def test_non_ecn_queue_drops_everything(self):
        rng = random.Random(0)
        model = StaticCongestion(signal_probability=1.0, ecn_capable_queue=False)
        assert model.sample(rng, ect_capable=True) == AQMDecision.DROP
        assert model.sample(rng, ect_capable=False) == AQMDecision.DROP

    def test_signal_rate(self):
        rng = random.Random(1)
        model = StaticCongestion(signal_probability=0.2)
        signals = sum(
            model.sample(rng, True) != AQMDecision.PASS for _ in range(10000)
        )
        assert 0.17 < signals / 10000 < 0.23

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            StaticCongestion(signal_probability=2.0)


class TestRED:
    def test_below_min_threshold_never_signals(self):
        rng = random.Random(0)
        red = REDQueue(min_threshold=5, max_threshold=15)
        for _ in range(50):
            red.observe_queue(2)
        assert red.signal_probability() == 0.0
        assert red.sample(rng, True) == AQMDecision.PASS

    def test_above_max_threshold_always_signals(self):
        rng = random.Random(0)
        red = REDQueue(min_threshold=5, max_threshold=15, ecn_capable_queue=True)
        for _ in range(200):
            red.observe_queue(30)
        assert red.signal_probability() == 1.0
        assert red.sample(rng, ect_capable=True) == AQMDecision.MARK
        assert red.sample(rng, ect_capable=False) == AQMDecision.DROP

    def test_linear_ramp_between_thresholds(self):
        red = REDQueue(min_threshold=5, max_threshold=15, max_probability=0.1, weight=1.0)
        red.observe_queue(10)  # midway
        assert red.signal_probability() == pytest.approx(0.05)

    def test_ewma_smooths_bursts(self):
        red = REDQueue(weight=0.1)
        red.observe_queue(100)
        # One burst moves the average only 10% of the way.
        assert red.avg_queue == pytest.approx(10.0)

    def test_ect_marked_not_dropped_under_red(self):
        """The ECN value proposition: under RED congestion, ECT packets
        survive (marked) where not-ECT packets die."""
        rng = random.Random(9)
        red = REDQueue(min_threshold=1, max_threshold=3, max_probability=1.0, weight=1.0)
        red.observe_queue(10)
        marks = drops = 0
        for _ in range(200):
            if red.sample(rng, ect_capable=True) == AQMDecision.MARK:
                marks += 1
            if red.sample(rng, ect_capable=False) == AQMDecision.DROP:
                drops += 1
        assert marks == 200
        assert drops == 200
