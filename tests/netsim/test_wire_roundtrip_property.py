"""Byte-exactness properties for the packet hot path.

The hot-path overhaul (slotted packets, arithmetic header checksum,
in-place TTL/ECN mutation) must not change a single wire byte.  These
properties pin the codec against randomly generated packets: encode →
decode round-trips, ICMP quote truncation keeps its prefix exactness,
and the in-place ECN rewrite produces bytes identical to a
fresh-object rewrite.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.ecn import ECN
from repro.netsim.icmp import quote_datagram, time_exceeded
from repro.netsim.ipv4 import HEADER_LEN, IPv4Packet, PROTO_UDP

addrs = st.integers(1, 0xFFFFFFFE)
packets = st.builds(
    IPv4Packet,
    src=addrs,
    dst=addrs,
    protocol=st.integers(0, 255),
    payload=st.binary(max_size=64),
    ttl=st.integers(1, 255),
    tos=st.integers(0, 255),
    ident=st.integers(0, 0xFFFF),
    dont_fragment=st.booleans(),
)


@settings(max_examples=200, deadline=None)
@given(packets)
def test_encode_decode_roundtrip(packet):
    decoded = IPv4Packet.decode(packet.encode())
    assert decoded == packet


@settings(max_examples=200, deadline=None)
@given(packets)
def test_arithmetic_checksum_verifies(packet):
    # decode() recomputes the RFC 1071 checksum over the wire header;
    # the arithmetic encoder must produce bytes that verify.
    IPv4Packet.decode(packet.encode(), verify=True)


@settings(max_examples=100, deadline=None)
@given(packets, st.integers(0, 64))
def test_icmp_quote_is_exact_truncation(packet, quote_payload):
    quote = quote_datagram(packet, payload_bytes=quote_payload)
    wire = packet.encode()
    keep = min(quote_payload, len(packet.payload))
    assert quote == wire[: HEADER_LEN + keep]


@settings(max_examples=100, deadline=None)
@given(packets)
def test_ttl_toggle_quote_matches_copy_quote(packet):
    # The router quotes an expiring packet by toggling TTL to 0 in
    # place around time_exceeded() instead of building a copy.  The
    # toggle must produce byte-identical quotes and leave the live
    # packet untouched.
    expected = time_exceeded(packet.replace(ttl=0))
    saved = packet.ttl
    packet.ttl = 0
    message = time_exceeded(packet)
    packet.ttl = saved
    assert message.body == expected.body
    assert message.quoted_packet().ttl == 0
    assert packet.ttl == saved


@settings(max_examples=100, deadline=None)
@given(packets, st.sampled_from(list(ECN)))
def test_in_place_ecn_rewrite_matches_copy_rewrite(packet, ecn):
    copied = packet.with_ecn(ecn)
    mutated = packet.copy()
    mutated.set_ecn(ecn)
    assert mutated == copied
    assert mutated.encode() == copied.encode()
    assert mutated.ecn is ecn
    # DSCP bits survive the rewrite (RFC 3168: ECN field only).
    assert mutated.tos & 0xFC == packet.tos & 0xFC


@settings(max_examples=100, deadline=None)
@given(packets)
def test_copy_is_independent(packet):
    clone = packet.copy()
    assert clone == packet and clone is not packet
    clone.ttl = max(1, clone.ttl - 1)
    clone.payload = b"x" + clone.payload
    assert packet.encode() == IPv4Packet.decode(packet.encode()).encode()


def test_udp_probe_bytes_stable_under_replace():
    # replace() must behave like dataclasses.replace did: new object,
    # selected fields overridden, original untouched.
    packet = IPv4Packet(
        src=0x0A000001,
        dst=0x0A000002,
        protocol=PROTO_UDP,
        payload=b"probe",
        ttl=64,
        tos=ECN.ECT_0,
    )
    bleached = packet.replace(tos=0)
    assert packet.tos == int(ECN.ECT_0)
    assert bleached.tos == 0
    assert bleached.payload == packet.payload
    try:
        packet.replace(nonsense=1)
    except TypeError:
        pass
    else:  # pragma: no cover - defends the API contract
        raise AssertionError("replace() accepted an unknown field")


@settings(max_examples=200, deadline=None)
@given(
    addrs,
    addrs,
    st.builds(
        __import__("repro.tcp.segment", fromlist=["TCPSegment"]).TCPSegment,
        src_port=st.integers(0, 0xFFFF),
        dst_port=st.integers(0, 0xFFFF),
        seq=st.integers(0, 0xFFFFFFFF),
        ack=st.integers(0, 0xFFFFFFFF),
        flags=st.integers(0, 0xFF),
        window=st.integers(0, 0xFFFF),
        payload=st.binary(max_size=40),
        mss=st.one_of(st.none(), st.integers(0, 0xFFFF)),
    ),
)
def test_tcp_arithmetic_checksum_matches_reference(src, dst, segment):
    # encode() sums header fields arithmetically instead of packing a
    # zero-checksum header and sweeping bytes; the result must verify
    # against the RFC 1071 reference and round-trip every field.
    import struct

    from repro.netsim.checksum import internet_checksum, pseudo_header
    from repro.netsim.ipv4 import PROTO_TCP
    from repro.tcp.segment import TCPSegment

    wire = segment.encode(src, dst)
    pseudo = pseudo_header(src, dst, PROTO_TCP, len(wire))
    assert internet_checksum(pseudo + wire) == 0
    decoded = TCPSegment.decode(wire, src, dst, verify=True)
    assert decoded.src_port == segment.src_port
    assert decoded.dst_port == segment.dst_port
    assert decoded.seq == segment.seq
    assert decoded.ack == segment.ack
    assert decoded.flags == segment.flags
    assert decoded.window == segment.window
    assert decoded.payload == segment.payload
    assert decoded.mss == segment.mss
    # RFC 768 zero-avoidance is UDP-only: TCP transmits a genuine zero
    # checksum when the sum folds to 0xFFFF.
    (csum,) = struct.unpack_from("!H", wire, 16)
    assert 0 <= csum <= 0xFFFF


@settings(max_examples=200, deadline=None)
@given(
    addrs,
    addrs,
    st.integers(0, 0xFFFF),
    st.integers(0, 0xFFFF),
    st.binary(max_size=32),
)
def test_socket_incremental_udp_checksum_matches_encode(
    src, dst, src_port, dst_port, payload
):
    # UDPSocket.send folds dst_port into a cached checksum base
    # instead of re-summing the datagram per probe; the bytes must be
    # identical to a full UDPDatagram.encode for every input.
    from repro.netsim.checksum import internet_checksum, pseudo_header
    from repro.netsim.udp import _HEADER, UDPDatagram

    want = UDPDatagram(
        src_port=src_port, dst_port=dst_port, payload=payload
    ).encode(src, dst)
    length = 8 + len(payload)
    base = 0xFFFF - internet_checksum(
        pseudo_header(src, dst, PROTO_UDP, length)
        + _HEADER.pack(src_port, 0, length, 0)
        + payload
    )
    total = base + dst_port
    total = (total & 0xFFFF) + (total >> 16)
    csum = 0xFFFF - total
    if csum == 0:
        csum = 0xFFFF
    assert _HEADER.pack(src_port, dst_port, length, csum) + payload == want
