"""Tests for the discrete event engine."""

import pytest

from repro.netsim.engine import EventScheduler
from repro.netsim.errors import SimulationError


class TestScheduling:
    def test_events_run_in_time_order(self):
        sched = EventScheduler()
        order = []
        sched.schedule(2.0, order.append, "late")
        sched.schedule(1.0, order.append, "early")
        sched.run()
        assert order == ["early", "late"]

    def test_ties_break_by_insertion_order(self):
        sched = EventScheduler()
        order = []
        for tag in ("a", "b", "c"):
            sched.schedule(1.0, order.append, tag)
        sched.run()
        assert order == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sched = EventScheduler()
        seen = []
        sched.schedule(3.5, lambda: seen.append(sched.now))
        sched.run()
        assert seen == [3.5]
        assert sched.now == 3.5

    def test_negative_delay_rejected(self):
        sched = EventScheduler()
        with pytest.raises(SimulationError):
            sched.schedule(-1.0, lambda: None)

    def test_schedule_at_absolute_time(self):
        sched = EventScheduler()
        sched.schedule(1.0, lambda: None)
        sched.step()
        seen = []
        sched.schedule_at(4.0, lambda: seen.append(sched.now))
        sched.run()
        assert seen == [4.0]

    def test_events_scheduled_during_run_execute(self):
        sched = EventScheduler()
        order = []

        def first():
            order.append("first")
            sched.schedule(1.0, lambda: order.append("nested"))

        sched.schedule(1.0, first)
        sched.run()
        assert order == ["first", "nested"]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sched = EventScheduler()
        fired = []
        event = sched.schedule(1.0, fired.append, "x")
        event.cancel()
        sched.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sched = EventScheduler()
        event = sched.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert sched.run() == 0

    def test_pending_excludes_cancelled(self):
        sched = EventScheduler()
        keep = sched.schedule(1.0, lambda: None)
        drop = sched.schedule(2.0, lambda: None)
        drop.cancel()
        assert sched.pending == 1
        assert not keep.cancelled


class TestRunUntil:
    def test_run_until_stops_at_deadline(self):
        sched = EventScheduler()
        fired = []
        sched.schedule(1.0, fired.append, "a")
        sched.schedule(5.0, fired.append, "b")
        count = sched.run_until(2.0)
        assert count == 1
        assert fired == ["a"]
        assert sched.now == 2.0

    def test_run_until_advances_clock_when_queue_empty(self):
        sched = EventScheduler()
        sched.run_until(7.0)
        assert sched.now == 7.0

    def test_run_until_includes_events_at_deadline(self):
        sched = EventScheduler()
        fired = []
        sched.schedule(2.0, fired.append, "edge")
        sched.run_until(2.0)
        assert fired == ["edge"]

    def test_remaining_events_fire_on_later_run(self):
        sched = EventScheduler()
        fired = []
        sched.schedule(5.0, fired.append, "late")
        sched.run_until(2.0)
        sched.run()
        assert fired == ["late"]


class TestSafety:
    def test_max_events_guard(self):
        sched = EventScheduler()

        def forever():
            sched.schedule(0.0, forever)

        sched.schedule(0.0, forever)
        with pytest.raises(SimulationError):
            sched.run(max_events=100)

    def test_dispatched_counter(self):
        sched = EventScheduler()
        for _ in range(5):
            sched.schedule(1.0, lambda: None)
        sched.run()
        assert sched.dispatched == 5


class TestMaxEventsBoundary:
    """The safety valve fires after *exactly* N dispatches."""

    def test_exact_budget_drains_cleanly(self):
        sched = EventScheduler()
        ran = []
        for tag in range(5):
            sched.schedule(1.0, ran.append, tag)
        assert sched.run(max_events=5) == 5
        assert ran == [0, 1, 2, 3, 4]

    def test_valve_fires_before_excess_dispatch(self):
        sched = EventScheduler()
        ran = []

        def forever():
            ran.append(len(ran))
            sched.schedule(0.0, forever)

        sched.schedule(0.0, forever)
        with pytest.raises(SimulationError):
            sched.run(max_events=10)
        # Regression: the valve used to let event N+1 run before
        # raising.  Exactly the budget may execute, never more.
        assert len(ran) == 10
        assert sched.dispatched == 10

    def test_zero_budget_with_pending_raises_immediately(self):
        sched = EventScheduler()
        ran = []
        sched.schedule(0.0, ran.append, 1)
        with pytest.raises(SimulationError):
            sched.run(max_events=0)
        assert ran == []


class TestHeapCompaction:
    """Lazily-cancelled events must not accumulate without bound."""

    def test_compaction_evicts_dead_entries(self):
        sched = EventScheduler()
        keep = [sched.schedule(float(i), lambda: None) for i in range(10)]
        doomed = [sched.schedule(100.0 + i, lambda: None) for i in range(500)]
        for event in doomed:
            event.cancel()
        # Dead entries outnumber live ones, so the heap compacts down
        # to (roughly) the live population instead of holding all 510.
        assert sched.pending == 10
        assert len(sched._heap) < 64
        ran = []
        for event in keep:
            event.callback = ran.append
            event.args = (event.seq,)
        sched.run()
        assert ran == [e.seq for e in keep]

    def test_compaction_preserves_dispatch_order(self):
        sched = EventScheduler()
        order = []
        events = [
            sched.schedule(1.0, order.append, i) for i in range(200)
        ]  # all tied at t=1.0: order must come from seq
        for event in events[::2]:
            event.cancel()
        sched.run()
        assert order == [e.seq for e in events[1::2]]

    def test_schedule_cancel_loop_stays_bounded(self):
        sched = EventScheduler()
        for _ in range(10_000):
            sched.schedule(1.0, lambda: None).cancel()
        assert len(sched._heap) <= 128
        assert sched.pending == 0


class TestCalendarQueue:
    """The benchmark-only backend must match the heap's ordering."""

    def test_matches_heap_order_on_mixed_stream(self):
        import heapq
        import random

        from repro.netsim.engine import CalendarQueue, Event

        rng = random.Random(20150401)
        events = [
            Event(rng.random() * 10.0, seq, lambda: None, ())
            for seq in range(2000)
        ]
        calendar = CalendarQueue()
        heap = []
        for event in events:
            calendar.push(event)
            heapq.heappush(heap, event)
        popped = [calendar.pop() for _ in range(len(events))]
        expected = [heapq.heappop(heap) for _ in range(len(events))]
        assert popped == expected

    def test_ties_break_by_seq(self):
        from repro.netsim.engine import CalendarQueue, Event

        calendar = CalendarQueue()
        for seq in (3, 1, 2, 0):
            calendar.push(Event(5.0, seq, lambda: None, ()))
        assert [calendar.pop().seq for _ in range(4)] == [0, 1, 2, 3]
