"""Tests for ECN-hostile middlebox behaviours."""

import random

from repro.netsim.ecn import ECN
from repro.netsim.ipv4 import IPv4Packet, PROTO_TCP, PROTO_UDP, Prefix, parse_addr
from repro.netsim.middlebox import (
    ECTBleacher,
    ECTDropper,
    NotECTDropper,
    TOSBleacher,
    any_ect_firewall,
    udp_ect_firewall,
)


def packet(ecn=ECN.ECT_0, protocol=PROTO_UDP, src="192.0.2.1", dst="198.51.100.1", dscp=0):
    return IPv4Packet(
        src=parse_addr(src),
        dst=parse_addr(dst),
        protocol=protocol,
        tos=(dscp << 2) | int(ecn),
    )


RNG = random.Random(0)


class TestECTBleacher:
    def test_bleaches_ect0(self):
        verdict = ECTBleacher().process(packet(ECN.ECT_0), RNG)
        assert not verdict.dropped
        assert verdict.packet.ecn is ECN.NOT_ECT

    def test_bleaches_ect1_and_ce(self):
        for ecn in (ECN.ECT_1, ECN.CE):
            verdict = ECTBleacher().process(packet(ecn), RNG)
            assert verdict.packet.ecn is ECN.NOT_ECT

    def test_not_ect_unchanged(self):
        original = packet(ECN.NOT_ECT)
        verdict = ECTBleacher().process(original, RNG)
        assert verdict.packet is original

    def test_preserves_dscp(self):
        verdict = ECTBleacher().process(packet(ECN.ECT_0, dscp=0b101010), RNG)
        assert verdict.packet.tos >> 2 == 0b101010

    def test_probabilistic_bleacher_sometimes_passes(self):
        """The paper's 125 'sometimes strip' hops."""
        box = ECTBleacher(probability=0.5)
        rng = random.Random(42)
        results = [box.process(packet(ECN.ECT_0), rng).packet.ecn for _ in range(400)]
        assert results.count(ECN.NOT_ECT) > 100
        assert results.count(ECN.ECT_0) > 100

    def test_bleach_ce_default_erases_congestion_signal(self):
        """Pin the golden default: CE is bleached like the ECT marks."""
        box = ECTBleacher()
        assert box.bleach_ce is True
        verdict = box.process(packet(ECN.CE), RNG)
        assert not verdict.dropped
        assert verdict.packet.ecn is ECN.NOT_ECT

    def test_bleach_ce_off_forwards_ce_untouched(self):
        """bleach_ce=False models gear that only normalises capability
        bits: ECT(0)/ECT(1) still bleach, CE passes through intact."""
        box = ECTBleacher(bleach_ce=False)
        ce = packet(ECN.CE)
        verdict = box.process(ce, RNG)
        assert not verdict.dropped
        assert verdict.packet is ce
        assert verdict.packet.ecn is ECN.CE
        for ecn in (ECN.ECT_0, ECN.ECT_1):
            assert box.process(packet(ecn), RNG).packet.ecn is ECN.NOT_ECT

    def test_bleach_ce_off_preserves_dscp_on_ce(self):
        box = ECTBleacher(bleach_ce=False)
        verdict = box.process(packet(ECN.CE, dscp=0b101010), RNG)
        assert verdict.packet.tos == (0b101010 << 2) | int(ECN.CE)


class TestECTDropper:
    def test_drops_ect(self):
        assert ECTDropper().process(packet(ECN.ECT_0), RNG).dropped

    def test_passes_not_ect(self):
        assert not ECTDropper().process(packet(ECN.NOT_ECT), RNG).dropped

    def test_protocol_scoping(self):
        """§4.4's finding: middleboxes that discard ECT-marked UDP but
        not ECT-marked TCP."""
        box = ECTDropper(protocols=frozenset({PROTO_UDP}))
        assert box.process(packet(ECN.ECT_0, PROTO_UDP), RNG).dropped
        assert not box.process(packet(ECN.ECT_0, PROTO_TCP), RNG).dropped

    def test_dst_scoping(self):
        target = parse_addr("198.51.100.1")
        box = ECTDropper(dst_addrs=frozenset({target}))
        assert box.process(packet(ECN.ECT_0, dst="198.51.100.1"), RNG).dropped
        assert not box.process(packet(ECN.ECT_0, dst="198.51.100.2"), RNG).dropped


class TestNotECTDropper:
    def test_drops_not_ect_passes_ect(self):
        box = NotECTDropper()
        assert box.process(packet(ECN.NOT_ECT), RNG).dropped
        assert not box.process(packet(ECN.ECT_0), RNG).dropped

    def test_src_prefix_scoping(self):
        """The Phoenix-library pair: misbehaves only from EC2 space."""
        ec2 = Prefix.parse("54.0.0.0/8")
        box = NotECTDropper(src_prefixes=(ec2,))
        assert box.process(packet(ECN.NOT_ECT, src="54.1.2.3"), RNG).dropped
        assert not box.process(packet(ECN.NOT_ECT, src="192.0.2.1"), RNG).dropped


class TestTOSBleacher:
    def test_zeroes_whole_byte(self):
        verdict = TOSBleacher().process(packet(ECN.ECT_0, dscp=0b111111), RNG)
        assert verdict.packet.tos == 0

    def test_zero_tos_passes_unmodified(self):
        original = packet(ECN.NOT_ECT)
        assert TOSBleacher().process(original, RNG).packet is original


class CountingRandom(random.Random):
    """random.Random that counts calls to random() (draw accounting)."""

    def __init__(self, seed=0):
        super().__init__(seed)
        self.draws = 0

    def random(self):
        self.draws += 1
        return super().random()


class TestScopingAndDraws:
    """Scope/probability interaction and RNG-draw accounting.

    Sharded chaos runs are bit-identical to sequential ones only if
    every middlebox consumes the per-epoch RNG stream identically on
    both paths — so the draw discipline is part of the contract:
    out-of-scope packets must consume **no** draw, in-scope packets of
    a probabilistic box exactly **one** draw whether or not the
    behaviour fires, and deterministic (probability=1) boxes none.
    """

    def test_src_prefix_and_probability_interact(self):
        """probability gates only packets already matched by scope."""
        ec2 = Prefix.parse("54.0.0.0/8")
        box = ECTBleacher(src_prefixes=(ec2,), probability=0.5)
        rng = random.Random(7)
        out_of_scope = [
            box.process(packet(ECN.ECT_0, src="192.0.2.1"), rng).packet.ecn
            for _ in range(200)
        ]
        assert out_of_scope.count(ECN.ECT_0) == 200
        in_scope = [
            box.process(packet(ECN.ECT_0, src="54.1.2.3"), rng).packet.ecn
            for _ in range(400)
        ]
        assert in_scope.count(ECN.NOT_ECT) > 100
        assert in_scope.count(ECN.ECT_0) > 100

    def test_out_of_scope_consumes_no_draw(self):
        ec2 = Prefix.parse("54.0.0.0/8")
        rng = CountingRandom(0)
        for box in (
            ECTBleacher(src_prefixes=(ec2,), probability=0.5),
            ECTDropper(protocols=frozenset({PROTO_UDP}), probability=0.5),
            ECTDropper(dst_addrs=frozenset({parse_addr("198.51.100.1")}),
                       probability=0.5),
        ):
            box.process(packet(ECN.ECT_0, PROTO_TCP, src="192.0.2.1",
                               dst="203.0.113.9"), rng)
        assert rng.draws == 0

    def test_in_scope_consumes_exactly_one_draw_fired_or_not(self):
        """An in-scope match of a probabilistic box costs one draw even
        when the dice say 'forward' — otherwise two worlds that differ
        only in one flaky hop's outcome would diverge on every later
        draw of the shared epoch stream."""
        box = ECTBleacher(probability=0.5)
        rng = CountingRandom(3)
        fired = not_fired = 0
        for i in range(64):
            before = rng.draws
            verdict = box.process(packet(ECN.ECT_0), rng)
            assert rng.draws == before + 1
            if verdict.packet.ecn is ECN.NOT_ECT:
                fired += 1
            else:
                not_fired += 1
        assert fired and not_fired

    def test_deterministic_box_consumes_no_draw(self):
        rng = CountingRandom(0)
        ECTBleacher().process(packet(ECN.ECT_0), rng)
        ECTDropper().process(packet(ECN.ECT_0), rng)
        assert rng.draws == 0


class TestFactories:
    def test_udp_ect_firewall_scope(self):
        target = parse_addr("198.51.100.1")
        box = udp_ect_firewall([target])
        assert box.process(packet(ECN.ECT_0, PROTO_UDP), RNG).dropped
        assert not box.process(packet(ECN.ECT_0, PROTO_TCP), RNG).dropped
        assert not box.process(
            packet(ECN.ECT_0, PROTO_UDP, dst="198.51.100.9"), RNG
        ).dropped

    def test_any_ect_firewall_covers_tcp(self):
        target = parse_addr("198.51.100.1")
        box = any_ect_firewall([target])
        assert box.process(packet(ECN.ECT_0, PROTO_TCP), RNG).dropped
