"""Tests for the Internet checksum (RFC 1071)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.netsim.checksum import internet_checksum, pseudo_header, verify_checksum


class TestKnownVectors:
    def test_rfc1071_example(self):
        # The classic worked example from RFC 1071 §3.
        data = bytes((0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7))
        assert internet_checksum(data) == (~0xDDF2) & 0xFFFF

    def test_empty_input(self):
        assert internet_checksum(b"") == 0xFFFF

    def test_all_zero_input(self):
        assert internet_checksum(bytes(8)) == 0xFFFF

    def test_odd_length_is_padded(self):
        # Padding with 0x00 means checksum(b'ab') == checksum over
        # words 0x6162, and checksum(b'a') == over 0x6100.
        assert internet_checksum(b"a") == (~0x6100) & 0xFFFF


class TestVerification:
    def test_roundtrip_verifies(self):
        payload = bytes(range(20))
        csum = internet_checksum(payload)
        block = payload + csum.to_bytes(2, "big")
        assert verify_checksum(block)

    def test_corruption_detected(self):
        payload = bytes(range(20))
        csum = internet_checksum(payload)
        block = bytearray(payload + csum.to_bytes(2, "big"))
        block[3] ^= 0xFF
        assert not verify_checksum(bytes(block))


@given(st.binary(min_size=0, max_size=256))
def test_checksum_in_16bit_range(data):
    assert 0 <= internet_checksum(data) <= 0xFFFF


@given(st.binary(min_size=2, max_size=128).filter(lambda b: len(b) % 2 == 0))
def test_appending_checksum_yields_valid_block(data):
    csum = internet_checksum(data)
    assert verify_checksum(data + csum.to_bytes(2, "big"))


@given(st.binary(min_size=2, max_size=64).filter(lambda b: len(b) % 2 == 0))
def test_word_order_invariance(data):
    """One's-complement addition commutes: swapping 16-bit words
    anywhere in the input leaves the checksum unchanged."""
    words = [data[i : i + 2] for i in range(0, len(data), 2)]
    reordered = b"".join(reversed(words))
    assert internet_checksum(data) == internet_checksum(reordered)


class TestPseudoHeader:
    def test_layout(self):
        pseudo = pseudo_header(0x01020304, 0x05060708, 17, 0x1234)
        assert pseudo == bytes(
            (1, 2, 3, 4, 5, 6, 7, 8, 0, 17, 0x12, 0x34)
        )

    def test_length_is_twelve(self):
        assert len(pseudo_header(0, 0, 6, 0)) == 12
