"""Tests for per-hop router processing."""

import random

from repro.netsim.ecn import ECN
from repro.netsim.ipv4 import IPv4Packet, PROTO_UDP, parse_addr
from repro.netsim.middlebox import ECTBleacher, ECTDropper
from repro.netsim.router import (
    HOP_DROP,
    HOP_FORWARD,
    HOP_TTL_EXPIRED,
    Router,
)

RNG = random.Random(0)


def router(**kwargs):
    defaults = dict(router_id="r1", asn=64500, interface_addr=parse_addr("10.0.0.1"))
    defaults.update(kwargs)
    return Router(**defaults)


def packet(ttl=64, ecn=ECN.ECT_0):
    return IPv4Packet(
        src=parse_addr("192.0.2.1"),
        dst=parse_addr("198.51.100.1"),
        protocol=PROTO_UDP,
        payload=b"x" * 16,
        ttl=ttl,
        tos=int(ecn),
        ident=7,
    )


class TestForwarding:
    def test_decrements_ttl(self):
        result = router().process_transit(packet(ttl=10), RNG)
        assert result.verdict == HOP_FORWARD
        assert result.packet.ttl == 9

    def test_decrements_in_place_on_simulator_owned_packet(self):
        # Transit packets are simulator-owned (the network clones the
        # caller's packet once at the send boundary), so the router
        # decrements TTL in place instead of copying per hop.
        original = packet(ttl=10)
        result = router().process_transit(original, RNG)
        assert result.packet is original
        assert original.ttl == 9


class TestTTLExpiry:
    def test_ttl_one_expires(self):
        result = router().process_transit(packet(ttl=1), RNG)
        assert result.verdict == HOP_TTL_EXPIRED
        assert result.icmp is not None

    def test_ttl_zero_expires(self):
        result = router().process_transit(packet(ttl=0), RNG)
        assert result.verdict == HOP_TTL_EXPIRED

    def test_icmp_quotes_packet_with_ttl_zero(self):
        result = router().process_transit(packet(ttl=1), RNG)
        quoted = result.icmp.quoted_packet()
        assert quoted.ttl == 0
        assert quoted.ident == 7

    def test_silent_router_sends_no_icmp(self):
        result = router(sends_icmp_errors=False).process_transit(packet(ttl=1), RNG)
        assert result.verdict == HOP_TTL_EXPIRED
        assert result.icmp is None

    def test_rate_limited_router_sometimes_silent(self):
        rng = random.Random(5)
        r = router(icmp_response_rate=0.5)
        responses = [
            r.process_transit(packet(ttl=1), rng).icmp is not None
            for _ in range(200)
        ]
        assert 40 < sum(responses) < 160

    def test_quote_payload_length_configurable(self):
        classic = router(icmp_quote_payload=8).process_transit(packet(ttl=1), RNG)
        full = router(icmp_quote_payload=128).process_transit(packet(ttl=1), RNG)
        assert len(full.icmp.body) > len(classic.icmp.body)
        assert len(classic.icmp.body) == 28


class TestMiddleboxChain:
    def test_dropper_blocks_transit(self):
        r = router(middleboxes=[ECTDropper()])
        result = r.process_transit(packet(ecn=ECN.ECT_0), RNG)
        assert result.verdict == HOP_DROP
        assert "ect-dropper" in result.reason

    def test_bleacher_rewrites_then_forwards(self):
        r = router(middleboxes=[ECTBleacher()])
        result = r.process_transit(packet(ecn=ECN.ECT_0), RNG)
        assert result.verdict == HOP_FORWARD
        assert result.packet.ecn is ECN.NOT_ECT

    def test_quote_reflects_bleached_mark(self):
        """A bleaching router's own TTL-exceeded quote shows not-ECT:
        this is exactly how the paper's traceroutes localise strips."""
        r = router(middleboxes=[ECTBleacher()])
        result = r.process_transit(packet(ttl=1, ecn=ECN.ECT_0), RNG)
        assert result.verdict == HOP_TTL_EXPIRED
        assert result.icmp.quoted_packet().ecn is ECN.NOT_ECT

    def test_chain_applies_in_order(self):
        r = router(middleboxes=[ECTBleacher(), ECTDropper()])
        # Bleacher clears the mark, so the dropper then passes it.
        result = r.process_transit(packet(ecn=ECN.ECT_0), RNG)
        assert result.verdict == HOP_FORWARD

    def test_add_middlebox(self):
        r = router()
        r.add_middlebox(ECTDropper())
        assert r.process_transit(packet(), RNG).verdict == HOP_DROP
