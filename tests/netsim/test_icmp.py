"""Tests for ICMP messages and quotations (the §4.2 mechanism)."""

import pytest

from repro.netsim.ecn import ECN
from repro.netsim.errors import CodecError
from repro.netsim.icmp import (
    CLASSIC_QUOTE_PAYLOAD,
    CODE_PORT_UNREACHABLE,
    CODE_TTL_EXCEEDED,
    ICMPMessage,
    TYPE_DEST_UNREACHABLE,
    TYPE_ECHO_REQUEST,
    TYPE_TIME_EXCEEDED,
    admin_prohibited,
    port_unreachable,
    quote_datagram,
    time_exceeded,
)
from repro.netsim.ipv4 import IPv4Packet, PROTO_UDP, parse_addr
from repro.netsim.udp import UDPDatagram


def probe_packet(payload_len=32, ecn=ECN.ECT_0):
    datagram = UDPDatagram(49152, 33434, b"p" * payload_len)
    src, dst = parse_addr("192.0.2.1"), parse_addr("198.51.100.2")
    return IPv4Packet(
        src=src,
        dst=dst,
        protocol=PROTO_UDP,
        payload=datagram.encode(src, dst),
        ttl=1,
        tos=int(ecn),
        ident=0x4242,
    )


class TestCodec:
    def test_roundtrip(self):
        message = ICMPMessage(icmp_type=TYPE_TIME_EXCEEDED, code=0, body=b"quoted")
        decoded = ICMPMessage.decode(message.encode())
        assert decoded == message

    def test_checksum_verified(self):
        wire = bytearray(ICMPMessage(TYPE_TIME_EXCEEDED, body=b"abc").encode())
        wire[-1] ^= 0x01
        with pytest.raises(CodecError):
            ICMPMessage.decode(bytes(wire))

    def test_truncated_rejected(self):
        with pytest.raises(CodecError):
            ICMPMessage.decode(b"\x0b\x00")


class TestQuotations:
    def test_classic_quote_is_header_plus_8(self):
        original = probe_packet()
        body = quote_datagram(original, CLASSIC_QUOTE_PAYLOAD)
        assert len(body) == 20 + 8

    def test_full_quote_includes_more(self):
        original = probe_packet(payload_len=64)
        body = quote_datagram(original, 128)
        assert len(body) == min(len(original.encode()), 20 + 128)

    def test_quoted_packet_preserves_ecn_field(self):
        """The core §4.2 observable: the quote carries the TOS byte as
        the router saw it."""
        original = probe_packet(ecn=ECN.ECT_0)
        message = time_exceeded(original)
        quoted = message.quoted_packet()
        assert quoted.ecn is ECN.ECT_0
        assert quoted.ident == 0x4242

    def test_quote_of_bleached_packet_shows_not_ect(self):
        bleached = probe_packet().with_ecn(ECN.NOT_ECT)
        quoted = time_exceeded(bleached).quoted_packet()
        assert quoted.ecn is ECN.NOT_ECT

    def test_quoted_udp_header_recoverable(self):
        """The classic 8 payload bytes are exactly the UDP header."""
        message = time_exceeded(probe_packet())
        quoted = message.quoted_packet()
        udp = UDPDatagram.decode(quoted.payload)
        assert udp.src_port == 49152
        assert udp.dst_port == 33434

    def test_quotation_survives_wire_roundtrip(self):
        message = time_exceeded(probe_packet())
        decoded = ICMPMessage.decode(message.encode())
        assert decoded.quoted_packet().ecn is ECN.ECT_0

    def test_echo_has_no_quotation(self):
        message = ICMPMessage(icmp_type=TYPE_ECHO_REQUEST, body=b"ping")
        assert not message.is_error
        with pytest.raises(CodecError):
            message.quoted_packet()


class TestConstructors:
    def test_time_exceeded(self):
        message = time_exceeded(probe_packet())
        assert message.icmp_type == TYPE_TIME_EXCEEDED
        assert message.code == CODE_TTL_EXCEEDED
        assert message.is_error

    def test_port_unreachable(self):
        message = port_unreachable(probe_packet())
        assert message.icmp_type == TYPE_DEST_UNREACHABLE
        assert message.code == CODE_PORT_UNREACHABLE

    def test_admin_prohibited(self):
        message = admin_prohibited(probe_packet())
        assert message.icmp_type == TYPE_DEST_UNREACHABLE
        assert message.code == 13


class _OptionsPacket(IPv4Packet):
    """An IPv4 packet whose wire form carries 4 bytes of options."""

    def encode(self) -> bytes:
        wire = bytearray(super().encode())
        wire[0] = (4 << 4) | 6  # IHL = 6 words = 24 bytes
        return bytes(wire[:20]) + b"\x01\x01\x01\x01" + bytes(wire[20:])


class TestQuoteHeaderLength:
    def test_quote_reads_ihl_from_wire(self):
        """Regression: the quote limit hard-coded a 20-byte header, so
        a datagram with IP options lost its last option bytes' worth of
        transport payload from the quotation."""
        base = probe_packet(payload_len=32)
        packet = _OptionsPacket(
            src=base.src,
            dst=base.dst,
            protocol=base.protocol,
            payload=base.payload,
            ttl=base.ttl,
            tos=base.tos,
            ident=base.ident,
        )
        quoted = quote_datagram(packet, CLASSIC_QUOTE_PAYLOAD)
        # 24-byte header (options included) + 8 transport bytes.
        assert len(quoted) == 24 + CLASSIC_QUOTE_PAYLOAD
        assert quoted[:24] == packet.encode()[:24]
        assert quoted[24:] == packet.encode()[24 : 24 + CLASSIC_QUOTE_PAYLOAD]

    def test_optionless_quote_unchanged(self):
        packet = probe_packet()
        quoted = quote_datagram(packet, CLASSIC_QUOTE_PAYLOAD)
        assert len(quoted) == 20 + CLASSIC_QUOTE_PAYLOAD
        assert quoted == packet.encode()[: 20 + CLASSIC_QUOTE_PAYLOAD]
