"""Tests for the timed-outage wireless loss model."""

import random

import pytest

from repro.netsim.clock import SimClock
from repro.netsim.queues import TimedOutageLoss


def bound_model(**kwargs):
    model = TimedOutageLoss(**kwargs)
    clock = SimClock()
    model.bind_clock(clock)
    return model, clock


class TestSchedule:
    def test_requires_clock(self):
        with pytest.raises(RuntimeError):
            TimedOutageLoss().sample_loss(random.Random(0))

    def test_no_outages_means_base_rate(self):
        model, clock = bound_model(base=0.1, outage_rate=1e-9)
        rng = random.Random(1)
        losses = sum(model.sample_loss(rng) for _ in range(5000))
        assert 0.07 < losses / 5000 < 0.13

    def test_outage_window_is_contiguous(self):
        model, clock = bound_model(
            base=0.0, outage_rate=1.0 / 50.0, outage_duration=5.0, outage_loss=1.0
        )
        rng = random.Random(2)
        # Walk time forward in small steps; losses must form runs, not
        # isolated scatter.
        states = []
        for step in range(4000):
            clock.advance_to(step * 0.1)
            states.append(model.sample_loss(rng))
        transitions = sum(1 for a, b in zip(states, states[1:]) if a != b)
        loss_fraction = sum(states) / len(states)
        assert 0.02 < loss_fraction < 0.35
        # Far fewer transitions than losses: losses cluster in windows.
        assert transitions < sum(states) / 3

    def test_coverage_matches_rate_times_duration(self):
        model, clock = bound_model(
            base=0.0, outage_rate=1.0 / 100.0, outage_duration=10.0, outage_loss=1.0
        )
        rng = random.Random(3)
        in_outage = 0
        samples = 40_000
        for step in range(samples):
            clock.advance_to(step * 0.25)  # 10k seconds total
            if model.sample_loss(rng):
                in_outage += 1
        coverage = in_outage / samples
        assert 0.05 < coverage < 0.16  # expected ~10%

    def test_partial_outage_loss(self):
        model, clock = bound_model(
            base=0.0, outage_rate=1000.0, outage_duration=1e9, outage_loss=0.5
        )
        rng = random.Random(4)
        model.sample_loss(rng)  # initialises the schedule
        clock.advance_to(10.0)  # far past the first (endless) outage start
        model.sample_loss(rng)
        assert model.in_outage(clock.now)
        losses = sum(model.sample_loss(rng) for _ in range(4000))
        assert 0.45 < losses / 4000 < 0.55

    def test_outages_skipped_between_sparse_samples(self):
        """Sampling long after several outages have come and gone must
        not report a stale outage."""
        model, clock = bound_model(
            base=0.0, outage_rate=1.0 / 10.0, outage_duration=1.0, outage_loss=1.0
        )
        rng = random.Random(5)
        model.sample_loss(rng)
        clock.advance_to(10_000.0)
        # Immediately after the jump we are almost surely not inside
        # an outage window (coverage ~10%); repeated sampling at the
        # same instant is consistent.
        first = model.sample_loss(rng)
        if not model.in_outage(clock.now):
            assert first is False


class TestScenarioIntegration:
    def test_wireless_vantage_uses_timed_outages(self, shared_world):
        loss = shared_world.vantage_hosts["ugla-wireless"].access.loss
        assert isinstance(loss, TimedOutageLoss)
        assert loss._clock is shared_world.network.scheduler.clock

    def test_wired_vantage_does_not(self, shared_world):
        from repro.netsim.queues import BernoulliLoss

        loss = shared_world.vantage_hosts["ugla-wired"].access.loss
        assert isinstance(loss, BernoulliLoss)
