"""Tests for the topology container."""

import pytest

from repro.netsim.errors import TopologyError
from repro.netsim.host import Host
from repro.netsim.ipv4 import Prefix, parse_addr
from repro.netsim.link import Link, link_pair
from repro.netsim.router import Router
from repro.netsim.topology import Topology


def router(rid, asn=64500):
    return Router(rid, asn=asn, interface_addr=parse_addr("10.0.0.1"))


class TestConstruction:
    def test_duplicate_router_rejected(self):
        topo = Topology()
        topo.add_router(router("r1"))
        with pytest.raises(TopologyError):
            topo.add_router(router("r1"))

    def test_link_needs_known_routers(self):
        topo = Topology()
        topo.add_router(router("r1"))
        with pytest.raises(TopologyError):
            topo.add_link(Link("r1", "ghost"))

    def test_duplicate_link_rejected(self):
        topo = Topology()
        topo.add_router(router("r1"))
        topo.add_router(router("r2"))
        topo.add_link(Link("r1", "r2"))
        with pytest.raises(TopologyError):
            topo.add_link(Link("r1", "r2"))

    def test_host_needs_known_router(self):
        topo = Topology()
        with pytest.raises(TopologyError):
            topo.add_host(Host("h", parse_addr("192.0.2.1"), "ghost"))

    def test_duplicate_host_addr_rejected(self):
        topo = Topology()
        topo.add_router(router("r1"))
        topo.add_host(Host("h1", parse_addr("192.0.2.1"), "r1"))
        with pytest.raises(TopologyError):
            topo.add_host(Host("h2", parse_addr("192.0.2.1"), "r1"))

    def test_duplicate_hostname_rejected(self):
        topo = Topology()
        topo.add_router(router("r1"))
        topo.add_host(Host("h1", parse_addr("192.0.2.1"), "r1"))
        with pytest.raises(TopologyError):
            topo.add_host(Host("h1", parse_addr("192.0.2.2"), "r1"))


class TestLookup:
    def _topo(self):
        topo = Topology()
        topo.add_router(router("r1", asn=100))
        topo.add_router(router("r2", asn=200))
        forward, backward = link_pair("r1", "r2")
        topo.add_link_pair(forward, backward)
        topo.add_host(Host("h1", parse_addr("192.0.2.1"), "r1"))
        return topo

    def test_host_by_addr(self):
        topo = self._topo()
        assert topo.host_by_addr(parse_addr("192.0.2.1")).hostname == "h1"
        assert topo.host_by_addr(parse_addr("192.0.2.2")) is None

    def test_host_by_name(self):
        topo = self._topo()
        assert topo.host_by_name("h1").addr == parse_addr("192.0.2.1")
        assert topo.host_by_name("nope") is None

    def test_router_for_addr_prefers_host_attachment(self):
        topo = self._topo()
        assert topo.router_for_addr(parse_addr("192.0.2.1")) == "r1"

    def test_router_for_addr_uses_claimed_prefix(self):
        topo = self._topo()
        topo.claim_prefix(Prefix.parse("203.0.113.0/24"), "r2")
        assert topo.router_for_addr(parse_addr("203.0.113.77")) == "r2"

    def test_router_for_unknown_addr_is_none(self):
        assert self._topo().router_for_addr(parse_addr("8.8.8.8")) is None

    def test_router_asn(self):
        assert self._topo().router_asn("r2") == 200

    def test_links_between(self):
        topo = self._topo()
        forward, backward = topo.links_between("r1", "r2")
        assert forward.dst == "r2"
        assert backward.dst == "r1"
        none_f, none_b = topo.links_between("r1", "r1")
        assert none_f is None and none_b is None

    def test_all_links(self):
        assert len(list(self._topo().all_links())) == 2


class TestValidation:
    def test_disconnected_graph_rejected(self):
        topo = Topology()
        topo.add_router(router("r1"))
        topo.add_router(router("r2"))
        with pytest.raises(TopologyError):
            topo.validate()

    def test_connected_graph_passes(self):
        topo = Topology()
        topo.add_router(router("r1"))
        topo.add_router(router("r2"))
        forward, backward = link_pair("r1", "r2")
        topo.add_link_pair(forward, backward)
        topo.validate()
