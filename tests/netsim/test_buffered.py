"""Tests for buffered links: queueing, tail drop, RED/ECN marking."""

import random

import pytest

from repro.netsim.buffered import BufferedLink, buffered_pair
from repro.netsim.ecn import ECN
from repro.netsim.errors import SimulationError
from repro.netsim.host import Host
from repro.netsim.ipv4 import IPv4Packet, PROTO_UDP, parse_addr
from repro.netsim.network import EVENT, Network
from repro.netsim.queues import REDQueue
from repro.netsim.router import Router
from repro.netsim.topology import Topology
from repro.netsim.clock import SimClock


def packet(size=1000, ecn=ECN.NOT_ECT):
    return IPv4Packet(
        src=1, dst=2, protocol=PROTO_UDP, payload=bytes(size - 20), tos=int(ecn)
    )


def bound_link(**kwargs):
    link = BufferedLink("a", "b", delay=0.001, **kwargs)
    clock = SimClock()
    link.bind_clock(clock)
    return link, clock


RNG = random.Random(0)


class TestServiceAndQueueing:
    def test_requires_clock(self):
        link = BufferedLink("a", "b")
        with pytest.raises(SimulationError):
            link.transit(packet(), RNG)

    def test_service_time(self):
        link, _ = bound_link(bandwidth=1_000_000)
        assert link.service_time(packet(1000)) == pytest.approx(0.008)

    def test_single_packet_delay_is_service_plus_propagation(self):
        link, _ = bound_link(bandwidth=1_000_000)
        outcome = link.transit(packet(1000), RNG)
        assert outcome.delivered
        assert outcome.delay == pytest.approx(0.008 + 0.001)

    def test_back_to_back_packets_queue(self):
        link, _ = bound_link(bandwidth=1_000_000)
        first = link.transit(packet(1000), RNG)
        second = link.transit(packet(1000), RNG)
        assert second.delay == pytest.approx(first.delay + 0.008)

    def test_queue_drains_as_clock_advances(self):
        link, clock = bound_link(bandwidth=1_000_000)
        link.transit(packet(1000), RNG)
        clock.advance_to(1.0)  # far past the busy period
        outcome = link.transit(packet(1000), RNG)
        assert outcome.delay == pytest.approx(0.009)

    def test_tail_drop_when_full(self):
        link, _ = bound_link(bandwidth=1_000_000, queue_limit=5)
        outcomes = [link.transit(packet(1000), RNG) for _ in range(10)]
        delivered = [o for o in outcomes if o.delivered]
        dropped = [o for o in outcomes if not o.delivered]
        assert len(delivered) <= 6  # one in service + limit queued
        assert dropped
        assert link.tail_drops == len(dropped)


class TestREDIntegration:
    def _red_link(self):
        red = REDQueue(min_threshold=2, max_threshold=6, max_probability=1.0, weight=1.0)
        return bound_link(bandwidth=1_000_000, queue_limit=50, red=red)

    def test_red_marks_ect_under_backlog(self):
        link, _ = self._red_link()
        marked = 0
        for _ in range(30):
            outcome = link.transit(packet(1000, ECN.ECT_0), RNG)
            if outcome.delivered and outcome.packet.ecn is ECN.CE:
                marked += 1
        assert marked > 0
        assert link.ce_marks == marked
        assert link.red_drops == 0  # ECT traffic is marked, never RED-dropped

    def test_red_drops_not_ect_under_backlog(self):
        link, _ = self._red_link()
        outcomes = [link.transit(packet(1000, ECN.NOT_ECT), RNG) for _ in range(30)]
        assert any(not o.delivered for o in outcomes)
        assert link.red_drops > 0

    def test_ecn_traffic_outlives_not_ect_through_red(self):
        """The RFC 3168 value proposition on a real queue."""
        link_a, _ = self._red_link()
        link_b, _ = self._red_link()
        ect_delivered = sum(
            link_a.transit(packet(1000, ECN.ECT_0), RNG).delivered
            for _ in range(40)
        )
        plain_delivered = sum(
            link_b.transit(packet(1000, ECN.NOT_ECT), RNG).delivered
            for _ in range(40)
        )
        assert ect_delivered > plain_delivered


class TestBufferedPair:
    def test_asymmetric_bandwidth(self):
        forward, backward = buffered_pair("a", "b", bandwidth=8_000_000,
                                          reverse_bandwidth=1_000_000)
        clock = SimClock()
        forward.bind_clock(clock)
        backward.bind_clock(clock)
        assert forward.service_time(packet(1000)) < backward.service_time(packet(1000))

    def test_red_instances_independent(self):
        red = REDQueue(weight=1.0)
        forward, backward = buffered_pair("a", "b", bandwidth=1e6, red=red)
        assert forward.red is not backward.red


class TestInNetwork:
    def test_event_mode_end_to_end_queueing(self):
        """A UDP burst through an event-mode network with a buffered
        bottleneck arrives paced at the bottleneck rate."""
        topo = Topology()
        topo.add_router(Router("r0", asn=1, interface_addr=parse_addr("10.0.0.1")))
        topo.add_router(Router("r1", asn=2, interface_addr=parse_addr("10.0.1.1")))
        forward, backward = buffered_pair(
            "r0", "r1", bandwidth=800_000, delay=0.001, queue_limit=64
        )
        topo.add_link_pair(forward, backward)
        client = topo.add_host(Host("c", parse_addr("192.0.2.1"), "r0"))
        server = topo.add_host(Host("s", parse_addr("198.51.100.1"), "r1"))
        net = Network(topo, seed=1, mode=EVENT)
        forward.bind_clock(net.scheduler.clock)
        backward.bind_clock(net.scheduler.clock)

        arrivals = []
        server.udp_bind(9, lambda d, p, t: arrivals.append(t))
        sock = client.udp_bind(None)
        for _ in range(10):
            sock.send(server.addr, 9, bytes(972))  # 1000B IP packets
        net.scheduler.run()

        assert len(arrivals) == 10
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        service = 1000 * 8 / 800_000
        for gap in gaps:
            assert gap == pytest.approx(service, rel=0.01)
