"""Tests for hosts, sockets, taps, and access-link filters."""

import pytest

from repro.netsim.ecn import ECN
from repro.netsim.errors import SocketError
from repro.netsim.host import AccessLink, Host
from repro.netsim.ipv4 import parse_addr
from repro.netsim.middlebox import ECTDropper
from repro.netsim.queues import BernoulliLoss
from repro.netsim.sockets import EPHEMERAL_BASE


class TestUDPSockets:
    def test_bind_and_echo(self, two_host_net):
        net, client, server = two_host_net
        received = []

        def echo(datagram, packet, now):
            received.append(datagram.payload)
            sock_server.send(packet.src, datagram.src_port, b"reply")

        sock_server = server.udp_bind(4000, echo)
        replies = []
        sock_client = client.udp_bind(None, lambda d, p, t: replies.append(d.payload))
        sock_client.send(server.addr, 4000, b"ping")
        net.scheduler.run()
        assert received == [b"ping"]
        assert replies == [b"reply"]

    def test_double_bind_rejected(self, two_host_net):
        _, client, _ = two_host_net
        client.udp_bind(5000)
        with pytest.raises(SocketError):
            client.udp_bind(5000)

    def test_ephemeral_allocation(self, two_host_net):
        _, client, _ = two_host_net
        first = client.udp_bind(None)
        second = client.udp_bind(None)
        assert first.port != second.port
        assert first.port >= EPHEMERAL_BASE

    def test_close_releases_port(self, two_host_net):
        _, client, _ = two_host_net
        sock = client.udp_bind(6000)
        sock.close()
        client.udp_bind(6000)  # no error

    def test_send_on_closed_socket_rejected(self, two_host_net):
        _, client, server = two_host_net
        sock = client.udp_bind(None)
        sock.close()
        with pytest.raises(SocketError):
            sock.send(server.addr, 123, b"x")

    def test_datagram_to_unbound_port_silently_dropped(self, two_host_net):
        net, client, server = two_host_net
        replies = []
        client.on_icmp(lambda m, p, t: replies.append(m))
        client.udp_bind(None).send(server.addr, 9999, b"x")
        net.scheduler.run()
        assert replies == []

    def test_port_unreachable_when_enabled(self, two_host_net):
        net, client, server = two_host_net
        server.respond_port_unreachable = True
        icmp = []
        client.on_icmp(lambda m, p, t: icmp.append(m))
        client.udp_bind(None).send(server.addr, 9999, b"x")
        net.scheduler.run()
        assert len(icmp) == 1
        assert icmp[0].icmp_type == 3


class TestECNMarking:
    def test_socket_send_sets_tos(self, two_host_net):
        net, client, server = two_host_net
        seen = []
        server.add_tap(lambda d, p, t: seen.append(p.ecn))
        client.udp_bind(None).send(server.addr, 123, b"x", ecn=ECN.ECT_0)
        client.udp_bind(None).send(server.addr, 123, b"y", ecn=ECN.NOT_ECT)
        net.scheduler.run()
        assert seen == [ECN.ECT_0, ECN.NOT_ECT]

    def test_send_rejects_out_of_range_ecn(self, two_host_net):
        """Regression: the inline TOS fast path must not let a bad ecn
        value bypass tos_byte's range check."""
        _, client, server = two_host_net
        sock = client.udp_bind(None)
        with pytest.raises(ValueError):
            sock.send(server.addr, 123, b"x", ecn=4)
        with pytest.raises(ValueError):
            sock.send(server.addr, 123, b"x", ecn=-1)

    def test_send_rejects_out_of_range_dscp(self, two_host_net):
        _, client, server = two_host_net
        sock = client.udp_bind(None)
        with pytest.raises(ValueError):
            sock.send(server.addr, 123, b"x", dscp=64)


class TestTaps:
    def test_taps_see_both_directions(self, two_host_net):
        net, client, server = two_host_net
        directions = []
        client.add_tap(lambda d, p, t: directions.append(d))
        server.udp_bind(123, lambda d, p, t: sock_s.send(p.src, d.src_port, b"r"))
        sock_s = server._udp_sockets[123]
        client.udp_bind(None, lambda d, p, t: None).send(server.addr, 123, b"q")
        net.scheduler.run()
        assert directions == ["out", "in"]

    def test_tap_removal(self, two_host_net):
        net, client, server = two_host_net
        seen = []
        remove = client.add_tap(lambda d, p, t: seen.append(d))
        remove()
        client.udp_bind(None).send(server.addr, 123, b"x")
        net.scheduler.run()
        assert seen == []


class TestFilters:
    def test_inbound_filter_drops(self, two_host_net):
        net, client, server = two_host_net
        server.inbound_filters.append(ECTDropper())
        got = []
        server.udp_bind(123, lambda d, p, t: got.append(d))
        client.udp_bind(None).send(server.addr, 123, b"x", ecn=ECN.ECT_0)
        client.udp_bind(None).send(server.addr, 123, b"y", ecn=ECN.NOT_ECT)
        net.scheduler.run()
        assert len(got) == 1

    def test_outbound_filter_drops(self, two_host_net):
        net, client, server = two_host_net
        client.outbound_filters.append(ECTDropper())
        got = []
        server.udp_bind(123, lambda d, p, t: got.append(d))
        client.udp_bind(None).send(server.addr, 123, b"x", ecn=ECN.ECT_0)
        net.scheduler.run()
        assert got == []

    def test_tap_sees_packet_before_outbound_filter(self, two_host_net):
        """tcpdump runs on the host: it records probes the gateway
        later drops (the McQuistin-home situation)."""
        net, client, server = two_host_net
        client.outbound_filters.append(ECTDropper())
        seen = []
        client.add_tap(lambda d, p, t: seen.append(p.ecn))
        client.udp_bind(None).send(server.addr, 123, b"x", ecn=ECN.ECT_0)
        net.scheduler.run()
        assert seen == [ECN.ECT_0]


class TestAccessLink:
    def test_access_delay_adds_to_rtt(self, net_factory):
        net, client, server = net_factory()
        client.access = AccessLink(delay=0.1)
        times = []
        server.udp_bind(123, lambda d, p, t: times.append(t))
        client.udp_bind(None).send(server.addr, 123, b"x")
        net.scheduler.run()
        assert times[0] >= 0.11  # 0.1 access + 0.01 link

    def test_access_loss_drops(self, net_factory):
        net, client, server = net_factory()
        client.access = AccessLink(loss=BernoulliLoss(1.0))
        got = []
        server.udp_bind(123, lambda d, p, t: got.append(d))
        client.udp_bind(None).send(server.addr, 123, b"x")
        net.scheduler.run()
        assert got == []
        assert net.counters.dropped_loss == 1

    def test_unattached_host_cannot_send(self):
        host = Host("lonely", parse_addr("192.0.2.9"), "r0")
        with pytest.raises(SocketError):
            host.udp_bind(None).send(parse_addr("192.0.2.10"), 1, b"x")
