"""Tests for the UDP codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netsim.errors import CodecError
from repro.netsim.ipv4 import parse_addr
from repro.netsim.udp import HEADER_LEN, UDPDatagram

SRC = parse_addr("192.0.2.1")
DST = parse_addr("198.51.100.2")


class TestCodec:
    def test_roundtrip(self):
        datagram = UDPDatagram(src_port=49152, dst_port=123, payload=b"ntp?")
        wire = datagram.encode(SRC, DST)
        decoded = UDPDatagram.decode(wire)
        assert decoded == datagram

    def test_length_field(self):
        datagram = UDPDatagram(1, 2, b"abc")
        assert datagram.length == HEADER_LEN + 3
        wire = datagram.encode(SRC, DST)
        assert int.from_bytes(wire[4:6], "big") == datagram.length

    def test_checksum_verifies_with_addresses(self):
        wire = UDPDatagram(5000, 123, b"payload").encode(SRC, DST)
        UDPDatagram.decode(wire, SRC, DST, verify=True)

    def test_checksum_fails_on_wrong_addresses(self):
        wire = UDPDatagram(5000, 123, b"payload").encode(SRC, DST)
        with pytest.raises(CodecError):
            UDPDatagram.decode(wire, SRC, DST + 1, verify=True)

    def test_checksum_fails_on_corrupt_payload(self):
        wire = bytearray(UDPDatagram(5000, 123, b"payload").encode(SRC, DST))
        wire[-1] ^= 0xFF
        with pytest.raises(CodecError):
            UDPDatagram.decode(bytes(wire), SRC, DST, verify=True)

    def test_verify_needs_addresses(self):
        wire = UDPDatagram(5000, 123, b"x").encode(SRC, DST)
        with pytest.raises(CodecError):
            UDPDatagram.decode(wire, verify=True)

    def test_truncated_header_rejected(self):
        with pytest.raises(CodecError):
            UDPDatagram.decode(b"\x00\x01\x00")

    def test_port_range_enforced(self):
        with pytest.raises(CodecError):
            UDPDatagram(src_port=70000, dst_port=1).encode(SRC, DST)

    def test_zero_checksum_never_emitted(self):
        """RFC 768: a computed checksum of zero is sent as 0xFFFF."""
        # Brute-force a payload whose checksum would be zero is
        # fragile; instead check the invariant across many payloads.
        for i in range(64):
            wire = UDPDatagram(i, i + 1, bytes([i] * i)).encode(SRC, DST)
            assert wire[6:8] != b"\x00\x00"

    def test_decode_ignores_bytes_past_length(self):
        wire = UDPDatagram(1, 2, b"abc").encode(SRC, DST) + b"JUNK"
        assert UDPDatagram.decode(wire).payload == b"abc"


@given(
    src_port=st.integers(0, 0xFFFF),
    dst_port=st.integers(0, 0xFFFF),
    payload=st.binary(max_size=128),
)
def test_roundtrip_property(src_port, dst_port, payload):
    datagram = UDPDatagram(src_port, dst_port, payload)
    decoded = UDPDatagram.decode(datagram.encode(SRC, DST), SRC, DST, verify=True)
    assert decoded == datagram
