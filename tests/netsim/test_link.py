"""Tests for link transit behaviour."""

import random

from repro.netsim.ecn import ECN
from repro.netsim.ipv4 import IPv4Packet, PROTO_UDP
from repro.netsim.link import Link, link_pair
from repro.netsim.queues import BernoulliLoss, GilbertElliottLoss, StaticCongestion


def packet(ecn=ECN.ECT_0):
    return IPv4Packet(src=1, dst=2, protocol=PROTO_UDP, tos=int(ecn))


class TestTransit:
    def test_clean_link_delivers_with_delay(self):
        link = Link("a", "b", delay=0.02)
        outcome = link.transit(packet(), random.Random(0))
        assert outcome.delivered
        assert outcome.delay == 0.02

    def test_jitter_adds_bounded_delay(self):
        link = Link("a", "b", delay=0.01, jitter=0.005)
        rng = random.Random(1)
        delays = [link.transit(packet(), rng).delay for _ in range(200)]
        assert all(0.01 <= d <= 0.015 for d in delays)
        assert len(set(delays)) > 1

    def test_lossy_link_drops(self):
        link = Link("a", "b", loss=BernoulliLoss(1.0))
        outcome = link.transit(packet(), random.Random(0))
        assert not outcome.delivered
        assert outcome.reason == "loss"

    def test_congested_ecn_link_marks_ect(self):
        link = Link("a", "b", aqm=StaticCongestion(1.0, ecn_capable_queue=True))
        outcome = link.transit(packet(ECN.ECT_0), random.Random(0))
        assert outcome.delivered
        assert outcome.packet.ecn is ECN.CE

    def test_congested_ecn_link_drops_not_ect(self):
        link = Link("a", "b", aqm=StaticCongestion(1.0, ecn_capable_queue=True))
        outcome = link.transit(packet(ECN.NOT_ECT), random.Random(0))
        assert not outcome.delivered
        assert outcome.reason == "aqm-drop"

    def test_mark_preserves_dscp(self):
        link = Link("a", "b", aqm=StaticCongestion(1.0))
        marked_packet = IPv4Packet(
            src=1, dst=2, protocol=PROTO_UDP, tos=(0b101010 << 2) | int(ECN.ECT_0)
        )
        outcome = link.transit(marked_packet, random.Random(0))
        assert outcome.packet.tos >> 2 == 0b101010
        assert outcome.packet.ecn is ECN.CE


class TestLinkPair:
    def test_directions(self):
        forward, backward = link_pair("a", "b", delay=0.01)
        assert (forward.src, forward.dst) == ("a", "b")
        assert (backward.src, backward.dst) == ("b", "a")

    def test_stateful_loss_not_shared_between_directions(self):
        forward, backward = link_pair("a", "b", loss=GilbertElliottLoss())
        assert forward.loss is not backward.loss
        forward.loss.in_bad_state = True
        assert not backward.loss.in_bad_state

    def test_asymmetric_impairment(self):
        forward, backward = link_pair(
            "a", "b", loss=BernoulliLoss(1.0), reverse_loss=BernoulliLoss(0.0)
        )
        rng = random.Random(0)
        assert not forward.transit(packet(), rng).delivered
        assert backward.transit(packet(), rng).delivered
