"""Property test: fast and event execution modes are equivalent.

The analytic fast path exists purely for performance (DESIGN.md §3);
this property drives randomly shaped chains with random impairments
through both modes and requires identical observable outcomes —
delivery, timing, marks, and ICMP behaviour.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.ecn import ECN
from repro.netsim.host import Host
from repro.netsim.ipv4 import parse_addr
from repro.netsim.link import link_pair
from repro.netsim.middlebox import ECTBleacher, ECTDropper
from repro.netsim.network import EVENT, FAST, Network
from repro.netsim.queues import BernoulliLoss, StaticCongestion
from repro.netsim.router import Router
from repro.netsim.topology import Topology


def build(mode, seed, hops, bleach_at, drop_at, loss_rate, congested_at):
    topo = Topology()
    for index in range(hops):
        topo.add_router(
            Router(
                f"r{index}",
                asn=100 + index,
                interface_addr=parse_addr(f"10.0.{index}.1"),
            )
        )
        if index:
            forward, backward = link_pair(
                f"r{index - 1}",
                f"r{index}",
                delay=0.002 * index,
                loss=BernoulliLoss(loss_rate),
                reverse_loss=BernoulliLoss(0.0),
                aqm=(
                    StaticCongestion(0.5, ecn_capable_queue=True)
                    if congested_at == index
                    else None
                ),
            )
            topo.add_link_pair(forward, backward)
    if bleach_at is not None and 0 <= bleach_at < hops:
        topo.routers[f"r{bleach_at}"].add_middlebox(ECTBleacher())
    if drop_at is not None and 0 <= drop_at < hops:
        topo.routers[f"r{drop_at}"].add_middlebox(ECTDropper())
    client = topo.add_host(Host("client", parse_addr("192.0.2.1"), "r0"))
    server = topo.add_host(Host("server", parse_addr("198.51.100.1"), f"r{hops - 1}"))
    return Network(topo, seed=seed, mode=mode), client, server


def observe(mode, seed, hops, bleach_at, drop_at, loss_rate, congested_at, ttls):
    """Log observable events with times relative to each probe's send.

    Absolute clock values are *not* comparable across modes: when a
    packet dies mid-path, event mode has advanced the clock to the
    drop point while the fast path scheduled nothing — a difference
    with no observable packet, so only per-probe latencies must agree.
    """
    net, client, server = build(
        mode, seed, hops, bleach_at, drop_at, loss_rate, congested_at
    )
    log = []
    sent_at = [0.0]
    server.udp_bind(
        123,
        lambda d, p, t: log.append(
            ("deliver", round(t - sent_at[0], 9), p.ttl, int(p.ecn))
        ),
    )
    client.on_icmp(
        lambda m, p, t: log.append(
            ("icmp", round(t - sent_at[0], 9), p.src, int(m.quoted_packet().ecn))
        )
    )
    sock = client.udp_bind(None)
    for index, ttl in enumerate(ttls):
        sent_at[0] = net.scheduler.now
        sock.send(
            server.addr,
            123,
            b"probe",
            ecn=ECN.ECT_0 if index % 2 == 0 else ECN.NOT_ECT,
            ttl=ttl,
            ident=index + 1,
        )
        net.scheduler.run()
    return log


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    hops=st.integers(2, 6),
    bleach_at=st.one_of(st.none(), st.integers(0, 5)),
    drop_at=st.one_of(st.none(), st.integers(0, 5)),
    loss_rate=st.sampled_from([0.0, 0.3]),
    congested_at=st.one_of(st.none(), st.integers(1, 5)),
    ttls=st.lists(st.integers(1, 10), min_size=1, max_size=6),
)
def test_fast_and_event_modes_agree(
    seed, hops, bleach_at, drop_at, loss_rate, congested_at, ttls
):
    fast_log = observe(FAST, seed, hops, bleach_at, drop_at, loss_rate, congested_at, ttls)
    event_log = observe(EVENT, seed, hops, bleach_at, drop_at, loss_rate, congested_at, ttls)
    assert fast_log == event_log
