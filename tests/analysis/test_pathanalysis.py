"""Tests for the §4.2 traceroute/strip analysis."""

import pytest

from repro.asmap.mapping import ASMap, UNKNOWN_ASN
from repro.core.analysis.pathanalysis import (
    DOWNSTREAM,
    PASS,
    STRIP,
    analyze_campaign,
    classify_path,
)
from repro.core.traces import HopObservation, PathTrace, TracerouteCampaign
from repro.netsim.ecn import ECN
from repro.netsim.ipv4 import Prefix


class FakeMap:
    """Deterministic addr -> asn mapping for unit tests."""

    def __init__(self, table):
        self.table = table

    def lookup(self, addr):
        return self.table.get(addr, UNKNOWN_ASN)


def path(hop_specs, vantage="v", dst=999):
    """hop_specs: list of (responder, quoted_ecn or None)."""
    trace = PathTrace(vantage_key=vantage, dst_addr=dst, sent_ecn=int(ECN.ECT_0))
    for ttl, (responder, quoted) in enumerate(hop_specs, start=1):
        trace.hops.append(
            HopObservation(
                ttl=ttl,
                responder=responder,
                sent_ecn=int(ECN.ECT_0),
                quoted_ecn=quoted,
            )
        )
    return trace


ECT = int(ECN.ECT_0)
CLEARED = int(ECN.NOT_ECT)


class TestClassifyPath:
    def test_clean_path_all_pass(self):
        classified = classify_path(
            path([(1, ECT), (2, ECT), (3, ECT)]),
            FakeMap({1: 10, 2: 10, 3: 20}),
        )
        assert [h.status for h in classified] == [PASS, PASS, PASS]

    def test_strip_then_downstream(self):
        """Runs of red: first cleared hop is the strip point, the rest
        are downstream."""
        classified = classify_path(
            path([(1, ECT), (2, CLEARED), (3, CLEARED)]),
            FakeMap({1: 10, 2: 20, 3: 20}),
        )
        assert [h.status for h in classified] == [PASS, STRIP, DOWNSTREAM]

    def test_flaky_upstream_recovery(self):
        """A pass after a strip resets attribution (sometimes-strip)."""
        classified = classify_path(
            path([(1, CLEARED), (2, ECT), (3, ECT)]),
            FakeMap({1: 10, 2: 10, 3: 10}),
        )
        assert [h.status for h in classified] == [STRIP, PASS, PASS]

    def test_boundary_annotation(self):
        classified = classify_path(
            path([(1, ECT), (2, CLEARED)]),
            FakeMap({1: 10, 2: 20}),
        )
        strip_hop = classified[1]
        assert strip_hop.status == STRIP
        assert strip_hop.at_as_boundary
        assert strip_hop.boundary_determinate

    def test_interior_strip_not_boundary(self):
        classified = classify_path(
            path([(1, ECT), (2, CLEARED)]),
            FakeMap({1: 10, 2: 10}),
        )
        assert not classified[1].at_as_boundary

    def test_unresponsive_hops_skipped(self):
        classified = classify_path(
            path([(1, ECT), (None, None), (3, ECT)]),
            FakeMap({1: 10, 3: 10}),
        )
        assert len(classified) == 2


class TestCampaignAnalysis:
    def _campaign(self):
        campaign = TracerouteCampaign()
        campaign.add(path([(1, ECT), (2, ECT), (3, ECT)]))          # clean
        campaign.add(path([(1, ECT), (4, CLEARED), (5, CLEARED)]))  # strip at 4
        campaign.add(path([(1, ECT), (4, ECT), (6, ECT)]))          # 4 passes here
        return campaign

    def _map(self):
        return FakeMap({1: 10, 2: 10, 3: 20, 4: 20, 5: 20, 6: 30})

    def test_hop_counts(self):
        analysis = analyze_campaign(self._campaign(), self._map())
        assert analysis.hops_measured == 9
        assert analysis.hops_passing == 7
        assert analysis.strip_events == 1
        assert analysis.downstream_events == 1
        assert analysis.pct_hops_passing == pytest.approx(700 / 9)

    def test_paths_with_strip(self):
        analysis = analyze_campaign(self._campaign(), self._map())
        assert analysis.paths_total == 3
        assert analysis.paths_with_strip == 1

    def test_strip_locations(self):
        analysis = analyze_campaign(self._campaign(), self._map())
        assert analysis.strip_locations() == {4}

    def test_sometimes_strip_locations(self):
        """Responder 4 strips on one path, passes on another: it is a
        'sometimes strips' location (the paper's 125)."""
        analysis = analyze_campaign(self._campaign(), self._map())
        assert analysis.sometimes_strip_locations() == {4}

    def test_ases_observed(self):
        analysis = analyze_campaign(self._campaign(), self._map())
        assert analysis.ases_observed() == {10, 20, 30}

    def test_boundary_fraction(self):
        analysis = analyze_campaign(self._campaign(), self._map())
        fraction, boundary, determinate = analysis.boundary_strip_fraction()
        assert (boundary, determinate) == (1, 1)
        assert fraction == 1.0


class TestOnMeasuredStudy:
    def test_vast_majority_of_hops_pass(self, study_results):
        """Abstract: ~98% of hops pass ECT(0) unmodified."""
        world, _, campaign = study_results
        analysis = analyze_campaign(campaign, world.as_map)
        assert analysis.pct_hops_passing > 90.0
        assert analysis.strip_events > 0

    def test_strip_locations_confined_to_bleacher_ases(self, study_results):
        """Strip points localise to the bleachers' ASes.

        A *flaky* bleacher smears attribution downstream (the TTL=j
        probe may pass unbleached while the TTL=j+1 probe is bleached,
        so the first cleared quote appears one hop late) — the exact
        attribution ambiguity Malone & Luckie describe — but never
        outside the AS hosting the bleacher.
        """
        world, _, campaign = study_results
        analysis = analyze_campaign(campaign, world.as_map)
        bleacher_asns = {
            world.topology.routers[r].asn
            for r in world.ground_truth.bleacher_routers
        }
        for addr in analysis.strip_locations():
            assert world.as_map.lookup(addr) in bleacher_asns
        # And at least one true bleacher interface shows up directly.
        bleacher_addrs = {
            world.topology.routers[r].interface_addr
            for r in world.ground_truth.bleacher_routers
        }
        assert analysis.strip_locations() & bleacher_addrs

    def test_sometimes_strippers_trace_to_flaky_bleachers(self, study_results):
        """Sometimes-strip locations only arise from flaky bleachers
        (at the bleacher itself or smeared downstream in its AS)."""
        world, _, campaign = study_results
        analysis = analyze_campaign(campaign, world.as_map)
        flaky_asns = {
            world.topology.routers[r].asn
            for r in world.ground_truth.flaky_bleacher_routers
        }
        for addr in analysis.sometimes_strip_locations():
            assert world.as_map.lookup(addr) in flaky_asns

    def test_many_ases_observed(self, study_results):
        world, _, campaign = study_results
        analysis = analyze_campaign(campaign, world.as_map)
        stub_and_transit = sum(
            1
            for info in world.autonomous_systems
            if info.kind in ("transit", "stub", "vantage")
        )
        assert len(analysis.ases_observed()) >= stub_and_transit * 0.5

    def test_noisy_map_close_to_truth(self, study_results):
        """The noisy IP->AS mapping shifts boundary classification only
        modestly — the paper's caveat, quantified.

        Compared over *all* hops rather than just strip points: with a
        handful of strip locations the strip-level fraction is
        all-or-nothing under per-address noise, whereas the hop-level
        rate is statistically stable.
        """
        world, _, campaign = study_results

        def hop_boundary_rate(analysis):
            determinate = [h for h in analysis.hops if h.boundary_determinate]
            boundary = sum(1 for h in determinate if h.at_as_boundary)
            return boundary / len(determinate)

        truth = analyze_campaign(campaign, world.as_map)
        noisy = analyze_campaign(campaign, world.noisy_as_map)
        assert abs(hop_boundary_rate(truth) - hop_boundary_rate(noisy)) < 0.15
