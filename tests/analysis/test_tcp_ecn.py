"""Tests for the §4.3 / Figures 5-6 TCP/ECN analysis."""

import pytest

from repro.core.analysis.tcp_ecn import (
    HISTORICAL_STUDIES,
    MEASUREMENT_YEAR,
    analyze_tcp_ecn,
    ecn_deployment_series,
    fit_deployment_trend,
    trace_tcp_reachability,
)
from repro.core.traces import ProbeOutcome, Trace, TraceSet


def synthetic_trace(trace_id, vantage, rows):
    """rows: list of (tcp_ok, negotiated)."""
    trace = Trace(trace_id=trace_id, vantage_key=vantage, batch=1, started_at=0.0)
    for addr, (tcp, neg) in enumerate(rows, start=1):
        trace.add(
            ProbeOutcome(
                server_addr=addr,
                tcp_plain=tcp,
                tcp_ecn=tcp,
                ecn_negotiated=neg,
            )
        )
    return trace


class TestTraceQuantities:
    def test_counts(self):
        trace = synthetic_trace(
            0, "v", [(True, True), (True, False), (False, False)]
        )
        record = trace_tcp_reachability(trace)
        assert record.tcp_reachable == 2
        assert record.ecn_negotiated == 1
        assert record.unwilling == 1
        assert record.pct_negotiated == pytest.approx(50.0)

    def test_empty_pct_is_none(self):
        record = trace_tcp_reachability(synthetic_trace(0, "v", [(False, False)]))
        assert record.pct_negotiated is None


class TestSummary:
    def test_averages(self):
        ts = TraceSet(server_addrs=[1, 2, 3])
        ts.add(synthetic_trace(0, "a", [(True, True), (True, True), (False, False)]))
        ts.add(synthetic_trace(1, "b", [(True, False), (True, True), (True, True)]))
        summary = analyze_tcp_ecn(ts)
        assert summary.avg_tcp_reachable == pytest.approx(2.5)
        assert summary.avg_ecn_negotiated == pytest.approx(2.0)
        assert summary.pct_negotiated == pytest.approx(80.0)


class TestHistoricalSeries:
    def test_monotone_growth_in_history(self):
        values = [p.pct_negotiated for p in HISTORICAL_STUDIES]
        # Not strictly monotone (Langley 2008 < Medina 2004 is false
        # here), but the overall trend rises strongly.
        assert values[-1] > values[0]
        assert values[-1] == 56.17  # Trammell 2014

    def test_series_appends_measurement(self):
        series = ecn_deployment_series(82.0)
        assert series[-1].label == "measured"
        assert series[-1].year == MEASUREMENT_YEAR
        assert series[-1].pct_negotiated == 82.0
        assert len(series) == len(HISTORICAL_STUDIES) + 1

    def test_trend_fit_predicts_growth(self):
        fit = fit_deployment_trend()
        assert fit.predict(2015.5) > fit.predict(2012.0) > fit.predict(2008.0)

    def test_measured_point_above_but_near_trend(self):
        """§4.3: 'a significant increase ... but on a growth curve that
        looks to be in line with previous results'."""
        fit = fit_deployment_trend()
        residual = fit.residual(MEASUREMENT_YEAR, 82.0)
        assert residual > 0  # above the prior-studies extrapolation
        assert residual < 35  # ... but not absurdly so


class TestOnMeasuredStudy:
    def test_negotiation_rate_matches_paper(self, study_results):
        _, trace_set, _ = study_results
        summary = analyze_tcp_ecn(trace_set)
        # Paper: 82.0%; deployment mix is calibrated to that.
        assert 75.0 < summary.pct_negotiated < 89.0

    def test_tcp_reachability_well_below_udp(self, study_results):
        """Paper: 1334 web servers vs 2253 NTP responders."""
        from repro.core.analysis.reachability import analyze_reachability

        _, trace_set, _ = study_results
        tcp = analyze_tcp_ecn(trace_set)
        udp = analyze_reachability(trace_set)
        assert tcp.avg_tcp_reachable < 0.75 * udp.avg_udp_plain

    def test_little_variation_between_traces(self, study_results):
        """Paper: 'there is little variation in reachability between
        traces' for TCP."""
        _, trace_set, _ = study_results
        summary = analyze_tcp_ecn(trace_set)
        counts = [t.tcp_reachable for t in summary.per_trace]
        spread = max(counts) - min(counts)
        assert spread <= max(3, 0.05 * summary.avg_tcp_reachable)

    def test_web_reachability_fraction(self, study_results):
        world, trace_set, _ = study_results
        summary = analyze_tcp_ecn(trace_set)
        deployed = sum(1 for s in world.servers if s.web is not None)
        # Online web servers respond reliably; offline hosts don't.
        assert summary.avg_tcp_reachable <= deployed
        assert summary.avg_tcp_reachable >= 0.75 * deployed
