"""Tests for the regional reachability breakdown."""

import pytest

from repro.core.analysis.regional import analyze_regional
from repro.core.traces import ProbeOutcome, Trace, TraceSet
from repro.geo.database import GeoDatabase
from repro.geo.regions import Region, country_by_code
from repro.netsim.ipv4 import Prefix, parse_addr


def small_db():
    db = GeoDatabase()
    db.register_country(Prefix.parse("62.0.0.0/16"), country_by_code("de"))
    db.register_country(Prefix.parse("24.0.0.0/16"), country_by_code("us"))
    return db


def make_trace_set():
    eu1, eu2 = parse_addr("62.0.0.1"), parse_addr("62.0.0.2")
    na = parse_addr("24.0.0.1")
    ts = TraceSet(server_addrs=[eu1, eu2, na])
    for trace_id in range(2):
        trace = Trace(trace_id=trace_id, vantage_key="v", batch=1, started_at=0.0)
        trace.add(ProbeOutcome(server_addr=eu1, udp_plain=True, udp_ect=True))
        # eu2 is ECT-blocked.
        trace.add(ProbeOutcome(server_addr=eu2, udp_plain=True, udp_ect=False))
        trace.add(ProbeOutcome(server_addr=na, udp_plain=True, udp_ect=True))
        ts.add(trace)
    return ts


class TestRegionalBreakdown:
    def test_rows_in_table1_order(self):
        rows = analyze_regional(make_trace_set(), small_db())
        assert [r.region for r in rows] == [Region.EUROPE, Region.NORTH_AMERICA]

    def test_counts_and_percentages(self):
        rows = analyze_regional(make_trace_set(), small_db())
        europe = rows[0]
        assert europe.servers == 2
        assert europe.avg_plain_reachable == pytest.approx(2.0)
        assert europe.avg_ect_reachable == pytest.approx(1.0)
        assert europe.pct_ect_given_plain == pytest.approx(50.0)
        assert europe.ect_deficit_pct == pytest.approx(50.0)
        america = rows[1]
        assert america.pct_ect_given_plain == pytest.approx(100.0)
        assert america.ect_deficit_pct == 0.0

    def test_empty_trace_set(self):
        ts = TraceSet(server_addrs=[parse_addr("62.0.0.1")])
        rows = analyze_regional(ts, small_db())
        assert rows[0].avg_plain_reachable == 0.0
        assert rows[0].pct_ect_given_plain is None


class TestOnMeasuredStudy:
    def test_regions_cover_all_servers(self, study_results):
        world, trace_set, _ = study_results
        rows = analyze_regional(trace_set, world.geo)
        assert sum(r.servers for r in rows) == len(trace_set.server_addrs)

    def test_no_region_shows_extreme_deficit(self, study_results):
        """Blocking follows networks, not continents: every region's
        ECT deficit stays modest."""
        world, trace_set, _ = study_results
        rows = analyze_regional(trace_set, world.geo)
        for row in rows:
            if row.servers >= 5:
                assert row.ect_deficit_pct < 25.0

    def test_overall_consistency_with_global_analysis(self, study_results):
        from repro.core.analysis.reachability import analyze_reachability

        world, trace_set, _ = study_results
        rows = analyze_regional(trace_set, world.geo)
        reach = analyze_reachability(trace_set)
        regional_total = sum(r.avg_plain_reachable for r in rows)
        assert regional_total == pytest.approx(reach.avg_udp_plain, rel=1e-9)
