"""Tests for methodology validation against ground truth."""

import pytest

from repro.core.analysis.validation import (
    InferenceQuality,
    validate_blocked_server_inference,
    validate_oddball_inference,
    validate_strip_location_inference,
    validate_study,
)


class TestInferenceQuality:
    def test_perfect(self):
        q = InferenceQuality("x", true_positives=5, false_positives=0, false_negatives=0)
        assert q.precision == 1.0
        assert q.recall == 1.0
        assert q.f1 == 1.0

    def test_partial(self):
        q = InferenceQuality("x", true_positives=3, false_positives=1, false_negatives=3)
        assert q.precision == pytest.approx(0.75)
        assert q.recall == pytest.approx(0.5)
        assert 0 < q.f1 < 1

    def test_degenerate(self):
        q = InferenceQuality("x", 0, 0, 0)
        assert q.precision == 1.0
        assert q.recall == 1.0


class TestOnMeasuredStudy:
    """The paper's inference rules recover the deployed middleboxes."""

    def test_blocked_server_inference_is_accurate(self, study_results):
        world, trace_set, _ = study_results
        quality = validate_blocked_server_inference(trace_set, world.ground_truth)
        assert quality.recall == 1.0  # every firewalled server found
        assert quality.precision > 0.6  # few false accusations

    def test_oddball_inference_is_accurate(self, study_results):
        world, trace_set, _ = study_results
        quality = validate_oddball_inference(trace_set, world.ground_truth)
        assert quality.precision == 1.0
        assert quality.recall > 0.6

    def test_strip_location_inference_recovers_bleacher_ases(self, study_results):
        world, _, campaign = study_results
        quality = validate_strip_location_inference(world, campaign)
        assert quality.precision == 1.0  # no AS falsely accused
        assert quality.recall > 0.6  # most bleaching ASes localised

    def test_validate_study_runs_all(self, study_results):
        world, trace_set, campaign = study_results
        results = validate_study(world, trace_set, campaign)
        assert [q.name for q in results] == [
            "blocked-servers",
            "not-ect-droppers",
            "strip-ases",
        ]
        assert all(q.f1 > 0.5 for q in results)
