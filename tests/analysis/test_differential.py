"""Tests for the Figure 3 differential-reachability analysis."""

import pytest

from repro.core.analysis.differential import (
    DifferentialAnalysis,
    transient_vs_persistent,
)
from repro.core.traces import ProbeOutcome, Trace, TraceSet


def make_trace_set():
    """Four servers, two vantages, two traces each.

    Server 1: always fine.  Server 2: always plain-only (blocked).
    Server 3: plain-only in one trace of one vantage (transient).
    Server 4: ect-only everywhere (the oddball).
    """
    ts = TraceSet(server_addrs=[1, 2, 3, 4])
    patterns = {
        ("a", 0): {1: (True, True), 2: (True, False), 3: (True, False), 4: (False, True)},
        ("a", 1): {1: (True, True), 2: (True, False), 3: (True, True), 4: (False, True)},
        ("b", 2): {1: (True, True), 2: (True, False), 3: (True, True), 4: (False, True)},
        ("b", 3): {1: (True, True), 2: (True, False), 3: (True, True), 4: (False, True)},
    }
    for (vantage, trace_id), rows in patterns.items():
        trace = Trace(trace_id=trace_id, vantage_key=vantage, batch=1, started_at=0.0)
        for addr, (plain, ect) in rows.items():
            trace.add(ProbeOutcome(server_addr=addr, udp_plain=plain, udp_ect=ect))
        ts.add(trace)
    return ts


class TestFractions:
    def test_blocked_server_fraction_one(self):
        analysis = DifferentialAnalysis(make_trace_set(), "plain-only")
        assert analysis.record("a", 2).fraction == 1.0
        assert analysis.record("b", 2).fraction == 1.0

    def test_clean_server_fraction_zero(self):
        analysis = DifferentialAnalysis(make_trace_set(), "plain-only")
        assert analysis.record("a", 1).fraction == 0.0

    def test_transient_server_partial_fraction(self):
        analysis = DifferentialAnalysis(make_trace_set(), "plain-only")
        assert analysis.record("a", 3).fraction == pytest.approx(0.5)
        assert analysis.record("b", 3).fraction == 0.0

    def test_never_eligible_absent(self):
        analysis = DifferentialAnalysis(make_trace_set(), "plain-only")
        # Server 4 is never plain-reachable: no record for 3a.
        assert analysis.record("a", 4) is None

    def test_ect_only_direction(self):
        analysis = DifferentialAnalysis(make_trace_set(), "ect-only")
        assert analysis.record("a", 4).fraction == 1.0
        assert analysis.record("a", 1).fraction == 0.0

    def test_unknown_direction_rejected(self):
        with pytest.raises(ValueError):
            DifferentialAnalysis(make_trace_set(), "sideways")

    def test_fractions_for_vantage_ordered_by_server(self):
        analysis = DifferentialAnalysis(make_trace_set(), "plain-only")
        heights = analysis.fractions_for_vantage("a")
        assert heights == [0.0, 1.0, 0.5, 0.0]


class TestThresholds:
    def test_servers_above(self):
        analysis = DifferentialAnalysis(make_trace_set(), "plain-only")
        assert analysis.servers_above(0.5, "a") == {2}
        assert analysis.servers_above(0.4, "a") == {2, 3}

    def test_counts_per_vantage(self):
        analysis = DifferentialAnalysis(make_trace_set(), "plain-only")
        assert analysis.count_above_per_vantage(0.5) == {"a": 1, "b": 1}

    def test_everywhere_vs_somewhere(self):
        analysis = DifferentialAnalysis(make_trace_set(), "plain-only")
        assert analysis.servers_above_everywhere(0.5) == {2}
        assert analysis.servers_above_somewhere(0.4) == {2, 3}

    def test_transient_vs_persistent_split(self):
        analysis = DifferentialAnalysis(make_trace_set(), "plain-only")
        persistent, transient = transient_vs_persistent(analysis)
        assert persistent == {2}
        assert transient == {3}


class TestOnMeasuredStudy:
    def test_blocked_servers_spike_from_every_vantage(self, study_results):
        """Paper: 'usually the same set of servers having high
        differential reachability from every location'."""
        world, trace_set, _ = study_results
        analysis = DifferentialAnalysis(trace_set, "plain-only")
        expected = (
            world.ground_truth.udp_ect_blocked | world.ground_truth.any_ect_blocked
        )
        everywhere = analysis.servers_above_everywhere(0.5)
        assert expected <= everywhere
        # And almost nothing else reaches that level everywhere.
        assert len(everywhere - expected) <= 2

    def test_figure3b_has_at_most_a_few_spikes(self, study_results):
        world, trace_set, _ = study_results
        analysis = DifferentialAnalysis(trace_set, "ect-only")
        somewhere = analysis.servers_above_somewhere(0.5)
        # Paper: at most 3 servers.
        expected = world.ground_truth.not_ect_blocked | world.ground_truth.phoenix
        assert somewhere <= expected
        assert analysis.servers_above_everywhere(0.5) <= expected

    def test_phoenix_pair_ec2_only(self, study_results):
        """Figure 3b: the Phoenix servers spike from EC2 vantages only."""
        world, trace_set, _ = study_results
        analysis = DifferentialAnalysis(trace_set, "ect-only")
        for addr in world.ground_truth.phoenix:
            ec2_fraction = analysis.record("ec2-virginia", addr)
            home = analysis.record("perkins-home", addr)
            assert ec2_fraction is None or ec2_fraction.fraction >= 0.0
            # From the home vantage the server behaves normally: it is
            # not-ECT reachable, so it never shows as ect-only there.
            if home is not None:
                assert home.fraction == 0.0

    def test_transient_outnumber_persistent(self, study_results):
        """Paper: ~4x more transiently unreachable servers."""
        _, trace_set, _ = study_results
        analysis = DifferentialAnalysis(trace_set, "plain-only")
        persistent, transient = transient_vs_persistent(analysis)
        assert len(transient) > len(persistent)
