"""Tests for the §4.4 / Table 2 UDP-TCP correlation analysis."""

import pytest

from repro.core.analysis.correlation import analyze_correlation
from repro.core.traces import ProbeOutcome, Trace, TraceSet


def trace_with(trace_id, vantage, rows):
    """rows: (plain, ect, tcp, negotiated) per server."""
    trace = Trace(trace_id=trace_id, vantage_key=vantage, batch=1, started_at=0.0)
    for addr, (plain, ect, tcp, neg) in enumerate(rows, start=1):
        trace.add(
            ProbeOutcome(
                server_addr=addr,
                udp_plain=plain,
                udp_ect=ect,
                tcp_plain=tcp,
                tcp_ecn=tcp,
                ecn_negotiated=neg,
            )
        )
    return trace


class TestRows:
    def test_counts(self):
        ts = TraceSet(server_addrs=[1, 2, 3])
        # Server 1: ECT-blocked but negotiates over TCP.
        # Server 2: ECT-blocked, TCP reachable, refuses ECN.
        # Server 3: fine.
        ts.add(
            trace_with(
                0,
                "v",
                [
                    (True, False, True, True),
                    (True, False, True, False),
                    (True, True, True, True),
                ],
            )
        )
        table = analyze_correlation(ts)
        row = table.row("v")
        assert row.avg_udp_ect_unreachable == pytest.approx(2.0)
        assert row.avg_fail_tcp_ecn == pytest.approx(1.0)
        assert row.avg_negotiate_tcp_ecn == pytest.approx(1.0)
        assert row.fraction_also_failing_tcp == pytest.approx(0.5)

    def test_averaging_over_traces(self):
        ts = TraceSet(server_addrs=[1])
        ts.add(trace_with(0, "v", [(True, False, True, False)]))
        ts.add(trace_with(1, "v", [(True, True, True, True)]))
        row = analyze_correlation(ts).row("v")
        assert row.avg_udp_ect_unreachable == pytest.approx(0.5)
        assert row.traces == 2

    def test_missing_vantage(self):
        ts = TraceSet(server_addrs=[1])
        ts.add(trace_with(0, "v", [(True, True, True, True)]))
        assert analyze_correlation(ts).row("other") is None

    def test_overall_fraction(self):
        ts = TraceSet(server_addrs=[1, 2])
        ts.add(
            trace_with(
                0, "a", [(True, False, True, True), (True, False, True, False)]
            )
        )
        table = analyze_correlation(ts)
        assert table.overall_fraction_also_failing == pytest.approx(0.5)


class TestOnMeasuredStudy:
    def test_weak_correlation(self, study_results):
        """§4.4's headline: most ECT-UDP-blocked servers still
        negotiate ECN over TCP."""
        _, trace_set, _ = study_results
        table = analyze_correlation(trace_set)
        assert table.overall_fraction_also_failing < 0.5

    def test_mcquistin_row_dominates(self, study_results):
        """Table 2: McQuistin home has an order of magnitude more
        ECT-unreachable servers than any other vantage."""
        _, trace_set, _ = study_results
        table = analyze_correlation(trace_set)
        mcquistin = table.row("mcquistin-home")
        others = [
            row.avg_udp_ect_unreachable
            for row in table.rows
            if row.vantage_key != "mcquistin-home"
        ]
        assert mcquistin.avg_udp_ect_unreachable > 2.5 * max(others)

    def test_every_vantage_has_a_row(self, study_results):
        world, trace_set, _ = study_results
        table = analyze_correlation(trace_set)
        assert {row.vantage_key for row in table.rows} == set(world.vantage_hosts)

    def test_majority_negotiate_despite_udp_block(self, study_results):
        _, trace_set, _ = study_results
        table = analyze_correlation(trace_set)
        negotiating = sum(r.avg_negotiate_tcp_ecn * r.traces for r in table.rows)
        failing = sum(r.avg_fail_tcp_ecn * r.traces for r in table.rows)
        assert negotiating > failing
