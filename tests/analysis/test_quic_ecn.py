"""Unit tests for the QUIC validation-vs-reachability analysis."""

from repro.core.analysis.quic_ecn import analyze_quic_ecn
from repro.core.traces import ProbeOutcome, QUICProbeOutcome, Trace, TraceSet


def outcome(addr, state=None, plain=True, ect=True):
    result = ProbeOutcome(
        server_addr=addr,
        udp_plain=plain,
        udp_ect=ect,
        udp_plain_attempts=1,
        udp_ect_attempts=1,
        tcp_plain=False,
        tcp_ecn=False,
        ecn_negotiated=False,
        http_status=None,
    )
    if state is not None:
        result.quic = QUICProbeOutcome(state=state)
    return result


def trace_set(*traces):
    ts = TraceSet(server_addrs=[1, 2, 3], description="unit test")
    ts.extend(traces)
    return ts


def trace(trace_id, *outcomes):
    t = Trace(trace_id=trace_id, vantage_key="a", batch=1, started_at=0.0)
    for o in outcomes:
        t.add(o)
    return t


class TestAnalyzeQuicEcn:
    def test_empty_without_quic_family(self):
        summary = analyze_quic_ecn(trace_set(trace(0, outcome(1), outcome(2))))
        assert summary.total == 0
        assert summary.pct_ecn_usable == 0.0
        assert not summary.bleaching_dominates
        assert summary.dominant_state == {}

    def test_crosstab_against_raw_reachability(self):
        ts = trace_set(
            trace(
                0,
                outcome(1, "valid", ect=True),
                outcome(2, "bleached", ect=True),
                outcome(3, "blackhole", ect=False),
            ),
            trace(
                1,
                outcome(1, "valid", ect=True),
                outcome(2, "bleached", ect=True),
                outcome(3, "blackhole", ect=False),
            ),
        )
        summary = analyze_quic_ecn(ts)
        assert summary.total == 6
        assert summary.count("valid") == 2
        bleached = summary.row("bleached")
        assert bleached.observations == 2
        assert bleached.raw_ect_reachable_pct == 100.0
        blackhole = summary.row("blackhole")
        assert blackhole.raw_ect_reachable_pct == 0.0
        assert blackhole.raw_plain_reachable_pct == 100.0
        assert summary.row("remarked").raw_ect_reachable_pct is None

    def test_dominant_state_per_server(self):
        ts = trace_set(
            trace(0, outcome(1, "bleached"), outcome(2, "valid")),
            trace(1, outcome(1, "bleached"), outcome(2, "blackhole")),
            trace(2, outcome(1, "valid"), outcome(2, "valid")),
        )
        summary = analyze_quic_ecn(ts)
        assert summary.dominant_state == {1: "bleached", 2: "valid"}
        assert summary.row("bleached").servers_dominant == 1
        assert summary.row("valid").servers_dominant == 1

    def test_dominance_and_usable_percentages(self):
        ts = trace_set(
            trace(
                0,
                outcome(1, "valid"),
                outcome(2, "bleached"),
                outcome(3, "bleached"),
            ),
            trace(1, outcome(1, "blackhole")),
        )
        summary = analyze_quic_ecn(ts)
        assert summary.bleaching_dominates
        assert summary.pct_bleached == 50.0
        assert summary.pct_blackholed == 25.0
        assert summary.pct_ecn_usable == 25.0
