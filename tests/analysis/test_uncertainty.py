"""Tests for the bootstrap uncertainty analysis."""

import pytest

from repro.core.analysis.uncertainty import headline_intervals
from repro.core.traces import ProbeOutcome, Trace, TraceSet


def uniform_trace_set(n_traces=8, n_servers=20, ect_fail=1):
    ts = TraceSet(server_addrs=list(range(1, n_servers + 1)))
    for trace_id in range(n_traces):
        trace = Trace(trace_id=trace_id, vantage_key="v", batch=1, started_at=0.0)
        for addr in range(1, n_servers + 1):
            trace.add(
                ProbeOutcome(
                    server_addr=addr,
                    udp_plain=True,
                    udp_ect=addr > ect_fail,
                    tcp_plain=addr % 2 == 0,
                    tcp_ecn=addr % 2 == 0,
                    ecn_negotiated=addr % 4 == 0,
                )
            )
        ts.add(trace)
    return ts


class TestHeadlineIntervals:
    def test_estimates_match_point_statistics(self):
        ts = uniform_trace_set()
        intervals = headline_intervals(ts, resamples=200)
        assert intervals.pct_ect_given_plain.estimate == pytest.approx(95.0)
        assert intervals.udp_plain_reachable.estimate == pytest.approx(20.0)
        assert intervals.pct_ecn_negotiated.estimate == pytest.approx(50.0)

    def test_zero_variance_gives_tight_interval(self):
        ts = uniform_trace_set()
        intervals = headline_intervals(ts, resamples=200)
        ci = intervals.pct_ect_given_plain
        assert ci.low == pytest.approx(ci.high)

    def test_deterministic(self):
        ts = uniform_trace_set()
        a = headline_intervals(ts, resamples=100, seed=5)
        b = headline_intervals(ts, resamples=100, seed=5)
        assert a.pct_ecn_negotiated.low == b.pct_ecn_negotiated.low

    def test_summary_lines(self):
        lines = headline_intervals(uniform_trace_set(), resamples=50).summary_lines()
        assert len(lines) == 4
        assert any("ECT-given-plain" in line for line in lines)
        assert all("CI" in line for line in lines)


class TestOnMeasuredStudy:
    def test_intervals_bracket_estimates(self, study_results):
        _, trace_set, _ = study_results
        intervals = headline_intervals(trace_set, resamples=300)
        for ci in (
            intervals.pct_ect_given_plain,
            intervals.pct_plain_given_ect,
            intervals.udp_plain_reachable,
            intervals.pct_ecn_negotiated,
        ):
            assert ci.low <= ci.estimate <= ci.high

    def test_intervals_are_informative(self, study_results):
        """The CI for the 2a percentage stays in the high 90s — the
        paper's conclusion is robust over trace resampling."""
        _, trace_set, _ = study_results
        intervals = headline_intervals(trace_set, resamples=300)
        assert intervals.pct_ect_given_plain.low > 90.0
        assert intervals.pct_ecn_negotiated.low > 70.0
        assert intervals.pct_ecn_negotiated.high < 95.0
