"""Tests for the §4.1 / Figure 2 reachability analysis."""

import pytest

from repro.core.analysis.reachability import (
    analyze_reachability,
    trace_reachability,
)
from repro.core.traces import ProbeOutcome, Trace, TraceSet


def synthetic_trace(trace_id, vantage, batch, rows):
    """rows: list of (plain, ect) bools."""
    trace = Trace(trace_id=trace_id, vantage_key=vantage, batch=batch, started_at=0.0)
    for addr, (plain, ect) in enumerate(rows, start=1):
        trace.add(
            ProbeOutcome(server_addr=addr, udp_plain=plain, udp_ect=ect)
        )
    return trace


class TestTraceReachability:
    def test_percentages(self):
        trace = synthetic_trace(
            0, "v", 1, [(True, True), (True, False), (False, True), (False, False)]
        )
        record = trace_reachability(trace)
        assert record.udp_plain == 2
        assert record.udp_ect == 2
        assert record.udp_both == 1
        assert record.pct_ect_given_plain == pytest.approx(50.0)
        assert record.pct_plain_given_ect == pytest.approx(50.0)

    def test_none_when_no_denominator(self):
        trace = synthetic_trace(0, "v", 1, [(False, False)])
        record = trace_reachability(trace)
        assert record.pct_ect_given_plain is None


class TestSummary:
    def _trace_set(self):
        ts = TraceSet(server_addrs=[1, 2, 3, 4])
        ts.add(synthetic_trace(0, "a", 1, [(True, True)] * 4))
        ts.add(synthetic_trace(1, "a", 1, [(True, True)] * 3 + [(True, False)]))
        ts.add(synthetic_trace(2, "b", 2, [(True, True)] * 2 + [(False, False)] * 2))
        return ts

    def test_averages(self):
        summary = analyze_reachability(self._trace_set())
        assert summary.avg_udp_plain == pytest.approx((4 + 4 + 2) / 3)
        assert summary.avg_pct_ect_given_plain == pytest.approx(
            (100.0 + 75.0 + 100.0) / 3
        )
        assert summary.avg_pct_plain_given_ect == pytest.approx(100.0)

    def test_min_pct(self):
        summary = analyze_reachability(self._trace_set())
        assert summary.min_pct_ect_given_plain == pytest.approx(75.0)

    def test_grouping(self):
        summary = analyze_reachability(self._trace_set())
        grouped = summary.by_vantage()
        assert len(grouped["a"]) == 2
        assert len(grouped["b"]) == 1
        assert summary.vantage_avg_pct("a")["a"] == pytest.approx(87.5)

    def test_batch_averages(self):
        summary = analyze_reachability(self._trace_set())
        per_batch = summary.batch_avg_reachable()
        assert per_batch[1] == pytest.approx(4.0)
        assert per_batch[2] == pytest.approx(2.0)


class TestOnMeasuredStudy:
    """Shape assertions against the real measured study (§4.1)."""

    def test_high_ect_reachability(self, study_results):
        _, trace_set, _ = study_results
        summary = analyze_reachability(trace_set)
        # Paper: 98.97% average, always above 90%.
        assert summary.avg_pct_ect_given_plain > 93.0
        assert summary.min_pct_ect_given_plain > 85.0

    def test_converse_higher_than_forward(self, study_results):
        """Figure 2b percentages exceed 2a: ECT-only unreachability is
        rarer than plain-only."""
        _, trace_set, _ = study_results
        summary = analyze_reachability(trace_set)
        assert summary.avg_pct_plain_given_ect > summary.avg_pct_ect_given_plain

    def test_mcquistin_home_is_the_outlier(self, study_results):
        _, trace_set, _ = study_results
        summary = analyze_reachability(trace_set)
        per_vantage = summary.vantage_avg_pct("a")
        worst = min(per_vantage, key=per_vantage.get)
        assert worst == "mcquistin-home"
        others = [v for k, v in per_vantage.items() if k != "mcquistin-home"]
        assert per_vantage["mcquistin-home"] < min(others) - 2.0

    def test_most_servers_reachable(self, study_results):
        world, trace_set, _ = study_results
        summary = analyze_reachability(trace_set)
        # Paper: 2253 of 2500 (~90%).
        fraction = summary.avg_udp_plain / summary.total_servers
        assert 0.80 < fraction < 0.97

    def test_batch2_reaches_fewer_servers(self, study_results):
        """Pool churn: the July/August batch reaches fewer servers."""
        _, trace_set, _ = study_results
        summary = analyze_reachability(trace_set)
        per_batch = summary.batch_avg_reachable()
        assert per_batch[2] < per_batch[1]
