"""Tests for the Table 1 / Figure 1 geographic analysis."""

import pytest

from repro.core.analysis.geographic import analyze_geography
from repro.geo.database import GeoDatabase
from repro.geo.regions import Region, country_by_code
from repro.netsim.ipv4 import Prefix, parse_addr


def small_db():
    db = GeoDatabase()
    db.register_country(Prefix.parse("62.0.0.0/16"), country_by_code("de"))
    db.register_country(Prefix.parse("24.0.0.0/16"), country_by_code("us"))
    return db


class TestDistribution:
    def test_counts(self):
        db = small_db()
        addrs = [
            parse_addr("62.0.0.1"),
            parse_addr("62.0.0.2"),
            parse_addr("24.0.0.1"),
            parse_addr("9.9.9.9"),  # unknown
        ]
        dist = analyze_geography(addrs, db)
        assert dist.count(Region.EUROPE) == 2
        assert dist.count(Region.NORTH_AMERICA) == 1
        assert dist.count(Region.UNKNOWN) == 1
        assert dist.total == 4

    def test_table_rows_order_and_total(self):
        dist = analyze_geography([parse_addr("62.0.0.1")], small_db())
        rows = dist.table_rows()
        assert rows[0][0] == "Africa"
        assert rows[-1] == ("Total", 1)
        assert rows[3] == ("Europe", 1)

    def test_points_exclude_unknown(self):
        db = small_db()
        addrs = [parse_addr("62.0.0.1"), parse_addr("9.9.9.9")]
        dist = analyze_geography(addrs, db)
        assert len(dist.points) == 1
        assert dist.points[0].country_code == "de"

    def test_empty_input(self):
        dist = analyze_geography([], small_db())
        assert dist.total == 0
        assert dist.points == []


class TestOnMeasuredStudy:
    def test_distribution_matches_scaled_table1(self, study_results):
        world, trace_set, _ = study_results
        dist = analyze_geography(trace_set.server_addrs, world.geo)
        for region, expected in world.params.servers.region_counts.items():
            assert dist.count(region) == expected

    def test_europe_dominates(self, study_results):
        """Table 1's shape: Europe >> North America >> Asia > rest."""
        world, trace_set, _ = study_results
        dist = analyze_geography(trace_set.server_addrs, world.geo)
        assert dist.count(Region.EUROPE) > dist.count(Region.NORTH_AMERICA)
        assert dist.count(Region.NORTH_AMERICA) > dist.count(Region.ASIA)

    def test_points_cover_both_hemispheres(self, study_results):
        world, trace_set, _ = study_results
        dist = analyze_geography(trace_set.server_addrs, world.geo)
        lats = [p.latitude for p in dist.points]
        lons = [p.longitude for p in dist.points]
        assert min(lats) < 0 < max(lats)
        assert min(lons) < 0 < max(lons)
