"""CLI surface of ``ecnudp campaign``: run, resume, status, report."""

from __future__ import annotations

import json

import pytest

from repro.cli import main

ARGS = ["--scale", "0.02", "--seed", "7", "--cadence", "3.5"]


@pytest.fixture(scope="module")
def campaign_dir(tmp_path_factory):
    """A real 2-epoch campaign, run once and shared read-only."""
    directory = tmp_path_factory.mktemp("cli") / "camp"
    assert main(["campaign", "run", "--dir", str(directory), "--epochs", "2", *ARGS]) == 0
    return directory


class TestRun:
    def test_run_reports_progress_and_writes_report(self, campaign_dir, capsys):
        assert (campaign_dir / "report.txt").is_file()
        assert (campaign_dir / "trend.json").is_file()
        assert (campaign_dir / "epochs" / "epoch-0001" / "summary.json").is_file()

    def test_run_refuses_existing_archive(self, campaign_dir, capsys):
        code = main(["campaign", "run", "--dir", str(campaign_dir), "--epochs", "1", *ARGS])
        assert code == 2
        assert "already exists" in capsys.readouterr().err

    def test_run_rejects_bad_epochs(self, tmp_path, capsys):
        code = main(["campaign", "run", "--dir", str(tmp_path / "x"), "--epochs", "0", *ARGS])
        assert code == 2

    def test_run_rejects_unknown_timeline(self, tmp_path, capsys):
        code = main(
            ["campaign", "run", "--dir", str(tmp_path / "x"), "--epochs", "1",
             "--timeline", "no-such", *ARGS]
        )
        assert code == 2
        assert "unknown timeline" in capsys.readouterr().err


class TestStatus:
    def test_text_status(self, campaign_dir, capsys):
        assert main(["campaign", "status", "--dir", str(campaign_dir)]) == 0
        out = capsys.readouterr().out
        assert "2/2 complete" in out
        assert "done" in out

    def test_json_status(self, campaign_dir, capsys):
        assert main(["campaign", "status", "--dir", str(campaign_dir), "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["completed_epochs"] == 2
        assert status["merged_epochs"] == 2
        assert status["complete"] is True
        assert status["spec"]["timeline"] == "fresh-look"
        assert len(status["years"]) == 2

    def test_missing_archive_fails(self, tmp_path, capsys):
        assert main(["campaign", "status", "--dir", str(tmp_path / "nope")]) == 2
        assert "no campaign archive" in capsys.readouterr().err


class TestReport:
    def test_prints_trend_report(self, campaign_dir, capsys):
        assert main(["campaign", "report", "--dir", str(campaign_dir)]) == 0
        out = capsys.readouterr().out
        assert "Longitudinal ECN campaign" in out
        assert "fresh-look" in out
        assert "2015.33" in out

    def test_report_matches_archived_report(self, campaign_dir, capsys):
        main(["campaign", "report", "--dir", str(campaign_dir)])
        out = capsys.readouterr().out
        assert out == (campaign_dir / "report.txt").read_text()

    def test_dashboard_written(self, campaign_dir, capsys):
        assert main(["campaign", "report", "--dir", str(campaign_dir), "--dashboard"]) == 0
        html = (campaign_dir / "dashboard.html").read_text()
        assert "Longitudinal trend" in html

    def test_missing_archive_fails(self, tmp_path, capsys):
        assert main(["campaign", "report", "--dir", str(tmp_path / "nope")]) == 2


class TestResume:
    def test_resume_of_complete_campaign_is_noop(self, campaign_dir, capsys):
        assert main(["campaign", "resume", "--dir", str(campaign_dir)]) == 0
        assert "ran 0 epoch(s), 2/2 complete" in capsys.readouterr().out

    def test_resume_missing_archive_fails(self, tmp_path, capsys):
        assert main(["campaign", "resume", "--dir", str(tmp_path / "nope")]) == 2
        assert "no campaign archive" in capsys.readouterr().err

    def test_resume_refuses_tampered_epoch(self, campaign_dir, capsys):
        summary = campaign_dir / "epochs" / "epoch-0000" / "summary.json"
        original = summary.read_text()
        try:
            summary.write_text(original.replace("{", '{"tampered": 1,', 1))
            assert main(["campaign", "resume", "--dir", str(campaign_dir)]) == 2
            assert "digest mismatch" in capsys.readouterr().err
        finally:
            summary.write_text(original)
