"""SLO watchdog tests: rule semantics, alert persistence, determinism.

Rule-engine behaviour is tested against synthetic trend points (pure
functions in, alert documents out).  One slow end-to-end test runs a
real drifted campaign and asserts the acceptance property: the
fresh-look bleaching collapse produces a ``bleaching-trend`` alert in
``alerts.jsonl``, while the frozen control timeline stays silent.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.campaign import (
    CampaignDriver,
    CampaignSpec,
    DEFAULT_RULES,
    SloRule,
    evaluate_rules,
    wall_time_regression,
)
from repro.scenario.timeline import FRESH_LOOK, FROZEN

from test_driver import fake_materialise


def points(*values, metric="mark_survival_pct", start_year=2015.33, cadence=2.0):
    return [
        {"epoch": i, "year": start_year + i * cadence, metric: value}
        for i, value in enumerate(values)
    ]


class TestRuleValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown SLO rule mode"):
            SloRule(name="x", metric="m", mode="psychic", threshold_pp=1.0)

    def test_unknown_direction_rejected(self):
        with pytest.raises(ValueError, match="unknown SLO rule direction"):
            SloRule(
                name="x", metric="m", mode="step-delta",
                threshold_pp=1.0, direction="sideways",
            )

    def test_nonpositive_threshold_rejected(self):
        with pytest.raises(ValueError, match="threshold_pp"):
            SloRule(name="x", metric="m", mode="step-delta", threshold_pp=0.0)

    def test_direction_gates_breach_sign(self):
        drop = SloRule(
            name="x", metric="m", mode="step-delta",
            threshold_pp=5.0, direction="drop",
        )
        assert drop.breached(-6.0)
        assert not drop.breached(6.0)
        rise = SloRule(
            name="x", metric="m", mode="step-delta",
            threshold_pp=5.0, direction="rise",
        )
        assert rise.breached(6.0)
        assert not rise.breached(-6.0)


class TestEvaluateRules:
    def test_baseline_delta_accumulates_to_breach(self):
        rule = SloRule(
            name="drift", metric="mark_survival_pct",
            mode="baseline-delta", threshold_pp=5.0,
        )
        alerts = evaluate_rules(
            points(90.0, 93.0, 96.0, 97.0), FROZEN, rules=[rule]
        )
        assert [a["epoch"] for a in alerts] == [2, 3]
        assert alerts[0]["reference"] == 90.0
        assert alerts[0]["delta_pp"] == 6.0

    def test_baseline_ratio_is_relative(self):
        rule = SloRule(
            name="collapse", metric="strip_events",
            mode="baseline-ratio", threshold_pp=25.0,
        )
        pts = points(100, 80, 70, metric="strip_events")
        alerts = evaluate_rules(pts, FROZEN, rules=[rule])
        assert [a["epoch"] for a in alerts] == [2]
        assert alerts[0]["delta_pp"] == -30.0

    def test_baseline_ratio_skips_zero_baseline(self):
        rule = SloRule(
            name="collapse", metric="strip_events",
            mode="baseline-ratio", threshold_pp=25.0,
        )
        assert evaluate_rules(
            points(0, 50, metric="strip_events"), FROZEN, rules=[rule]
        ) == []

    def test_step_delta_flags_only_the_jump(self):
        rule = SloRule(
            name="step", metric="mark_survival_pct",
            mode="step-delta", threshold_pp=10.0,
        )
        alerts = evaluate_rules(points(90.0, 91.0, 75.0, 76.0), FROZEN, rules=[rule])
        assert [a["epoch"] for a in alerts] == [2]
        assert alerts[0]["reference"] == 91.0

    def test_timeline_envelope_uses_model_expectation(self):
        rule = SloRule(
            name="envelope", metric="negotiation_pct",
            mode="timeline-envelope", threshold_pp=15.0,
        )
        # FROZEN expects 82 % negotiation at every year.
        alerts = evaluate_rules(
            points(81.0, 60.0, metric="negotiation_pct"), FROZEN, rules=[rule]
        )
        assert [a["epoch"] for a in alerts] == [1]
        assert alerts[0]["reference"] == 82.0

    def test_result_is_pure_and_ordered(self):
        pts = points(100, 60, 50, metric="strip_events")
        first = evaluate_rules(pts, FRESH_LOOK)
        second = evaluate_rules(list(reversed(pts)), FRESH_LOOK)
        assert first == second
        assert first == sorted(first, key=lambda a: (a["epoch"], a["rule"]))

    def test_missing_metric_points_are_skipped(self):
        assert evaluate_rules([{"epoch": 0, "year": 2015.33}], FROZEN) == []

    def test_alert_documents_are_timestamp_free(self):
        alerts = evaluate_rules(points(100, 50, metric="strip_events"), FROZEN)
        assert alerts
        for alert in alerts:
            assert alert["level"] == "alert"
            assert alert["kind"] == "slo-breach"
            assert "wall" not in alert and "time" not in alert


class TestWallTimeRegression:
    def test_flags_epoch_far_above_prior_median(self):
        breaches = wall_time_regression(
            [(0, 2.0), (1, 2.1), (2, 1.9), (3, 9.0)]
        )
        assert [b["epoch"] for b in breaches] == [3]
        assert breaches[0]["rule"] == "epoch-wall-time"
        assert breaches[0]["median_seconds"] == 2.0

    def test_floor_suppresses_fast_campaign_jitter(self):
        # 0.3 s is 10x the median but below the 1 s floor.
        assert wall_time_regression([(0, 0.03), (1, 0.3)]) == []

    def test_first_epoch_never_breaches(self):
        assert wall_time_regression([(0, 100.0)]) == []


class TestArchivePersistence:
    def test_alerts_file_rebuilt_idempotently(self, tmp_path, monkeypatch):
        monkeypatch.setattr(CampaignDriver, "_materialise_epoch", fake_materialise)
        spec = CampaignSpec(scale=0.02, seed=7)
        driver = CampaignDriver.create(tmp_path / "camp", spec, target_epochs=2)
        driver.run()
        archive = driver.archive
        assert archive.alerts_path.exists()
        before = archive.alerts_path.read_bytes()
        archive.refresh_alerts()
        assert archive.alerts_path.read_bytes() == before
        # The fake trend drifts by single points — below every threshold.
        assert archive.alerts() == []

    def test_interrupted_campaign_converges_on_same_alerts(self, tmp_path, monkeypatch):
        monkeypatch.setattr(CampaignDriver, "_materialise_epoch", fake_materialise)
        spec = CampaignSpec(scale=0.02, seed=7)
        CampaignDriver.create(tmp_path / "full", spec, target_epochs=4).run()
        half = CampaignDriver.create(tmp_path / "half", spec, target_epochs=2)
        half.run()
        resumed = CampaignDriver.resume(tmp_path / "half", target_epochs=4)
        assert resumed.run() == 2
        assert (tmp_path / "half" / "alerts.jsonl").read_bytes() == (
            tmp_path / "full" / "alerts.jsonl"
        ).read_bytes()

    def test_driver_narrates_new_breaches_once(self, tmp_path, monkeypatch):
        breaching = fake_breaching_materialise()
        monkeypatch.setattr(CampaignDriver, "_materialise_epoch", breaching)
        from repro.obs import EventLog

        log = EventLog()
        spec = CampaignSpec(scale=0.02, seed=7)
        driver = CampaignDriver.create(
            tmp_path / "camp", spec, target_epochs=3, events=log
        )
        driver.run()
        breaches = [e for e in log.export() if e["kind"] == "slo-breach"]
        keys = [(e["rule"], e["epoch"]) for e in breaches]
        # Re-merges re-evaluate every epoch; narration stays deduplicated.
        assert len(keys) == len(set(keys))
        assert any(rule == "bleaching-trend" for rule, _ in keys)


def fake_breaching_materialise():
    """A materialiser whose strip counts collapse hard at epoch >= 1."""

    def materialise(self, epoch, drift, directory: Path):
        directory.mkdir(parents=True)
        (directory / "manifest.json").write_text(json.dumps({"epoch": epoch}))
        (directory / "summary.json").write_text(
            json.dumps(
                {
                    "section_4_1": {
                        "avg_udp_plain_reachable": 40.0,
                        "avg_pct_ect_given_plain": 95.0,
                    },
                    "section_4_2": {
                        "pct_hops_passing": 94.0,
                        "strip_events": 100 if epoch == 0 else 10,
                    },
                    "section_4_3": {"pct_negotiated": 80.0},
                }
            )
        )

    return materialise


@pytest.mark.slow
class TestDriftedCampaignAlerts:
    """Acceptance: the fresh-look collapse trips the watchdog for real."""

    def run_campaign(self, directory: Path, timeline: str) -> CampaignDriver:
        spec = CampaignSpec(
            scale=0.02, seed=7, cadence_years=4.0,
            timeline=timeline, pool_churn=False,
        )
        driver = CampaignDriver.create(directory, spec, target_epochs=3)
        driver.run()
        return driver

    def test_fresh_look_produces_bleaching_alert(self, tmp_path):
        driver = self.run_campaign(tmp_path / "drifted", "fresh-look")
        alerts = driver.archive.alerts()
        rules = {a["rule"] for a in alerts}
        assert "bleaching-trend" in rules
        # The report surfaces the same breaches (same pure evaluation).
        report = driver.archive.report_path.read_text()
        assert "SLO watchdog" in report
        assert "bleaching-trend" in report

    def test_frozen_control_stays_silent(self, tmp_path):
        driver = self.run_campaign(tmp_path / "control", "frozen")
        assert driver.archive.alerts() == []
        assert "SLO watchdog" not in driver.archive.report_path.read_text()
