"""Campaign archive format: manifests, checkpoints, corruption, merges."""

from __future__ import annotations

import json

import pytest

from repro.campaign import (
    CAMPAIGN_FORMAT,
    CampaignArchive,
    CampaignError,
    CampaignSpec,
    CheckpointRecord,
)


@pytest.fixture
def spec() -> CampaignSpec:
    return CampaignSpec(scale=0.02, seed=7, cadence_years=2.0)


def fake_epoch(archive: CampaignArchive, epoch: int) -> CheckpointRecord:
    """Publish a minimal fake epoch archive + checkpoint record."""
    drift = archive.spec.drift_for_epoch(epoch)
    directory = archive.epoch_dir(epoch)
    directory.mkdir(parents=True)
    (directory / "manifest.json").write_text(
        json.dumps({"scale": archive.spec.scale, "seed": archive.spec.seed})
    )
    (directory / "summary.json").write_text(
        json.dumps(
            {
                "section_4_1": {
                    "avg_udp_plain_reachable": 40.0 + epoch,
                    "avg_pct_ect_given_plain": 95.0 - epoch,
                },
                "section_4_2": {"pct_hops_passing": 90.0 + epoch, "strip_events": 10 - epoch},
                "section_4_3": {"pct_negotiated": 80.0 + epoch},
            }
        )
    )
    record = CheckpointRecord(
        epoch=epoch,
        year=drift.year,
        drift=drift,
        digest=archive.digest_epoch(epoch),
    )
    archive.record_epoch(record)
    return record


class TestCreateLoad:
    def test_round_trip(self, tmp_path, spec):
        created = CampaignArchive.create(tmp_path / "camp", spec, target_epochs=4)
        loaded = CampaignArchive.load(tmp_path / "camp")
        assert loaded.spec == created.spec
        assert loaded.target_epochs == 4

    def test_create_refuses_existing_archive(self, tmp_path, spec):
        CampaignArchive.create(tmp_path / "camp", spec, target_epochs=1)
        with pytest.raises(CampaignError, match="already exists"):
            CampaignArchive.create(tmp_path / "camp", spec, target_epochs=2)

    def test_load_missing_directory(self, tmp_path):
        with pytest.raises(CampaignError, match="no campaign archive"):
            CampaignArchive.load(tmp_path / "nope")

    def test_load_rejects_foreign_format(self, tmp_path):
        target = tmp_path / "camp"
        target.mkdir()
        (target / "campaign.json").write_text(json.dumps({"format": "other/1"}))
        with pytest.raises(CampaignError, match="not a campaign manifest"):
            CampaignArchive.load(target)

    def test_manifest_format_tag(self, tmp_path, spec):
        CampaignArchive.create(tmp_path / "camp", spec, target_epochs=1)
        document = json.loads((tmp_path / "camp" / "campaign.json").read_text())
        assert document["format"] == CAMPAIGN_FORMAT

    def test_extend_target_never_shrinks(self, tmp_path, spec):
        archive = CampaignArchive.create(tmp_path / "camp", spec, target_epochs=4)
        archive.extend_target(2)
        assert CampaignArchive.load(tmp_path / "camp").target_epochs == 4
        archive.extend_target(6)
        assert CampaignArchive.load(tmp_path / "camp").target_epochs == 6


class TestSpecValidation:
    def test_bad_scale(self):
        with pytest.raises(CampaignError):
            CampaignSpec(scale=0.0)

    def test_bad_cadence(self):
        with pytest.raises(CampaignError):
            CampaignSpec(cadence_years=0.0)

    def test_unknown_timeline(self):
        with pytest.raises(CampaignError):
            CampaignSpec(timeline="no-such")

    def test_unknown_chaos_profile(self):
        with pytest.raises(CampaignError, match="chaos profile"):
            CampaignSpec(chaos="no-such")

    def test_dict_round_trip(self, spec):
        assert CampaignSpec.from_dict(spec.to_dict()) == spec
        chaotic = CampaignSpec(scale=0.02, seed=7, chaos="default", chaos_seed=3)
        assert CampaignSpec.from_dict(chaotic.to_dict()) == chaotic


class TestCheckpoints:
    def test_records_parse_back_in_order(self, tmp_path, spec):
        archive = CampaignArchive.create(tmp_path / "camp", spec, target_epochs=3)
        written = [fake_epoch(archive, n) for n in range(3)]
        assert archive.checkpoints() == written

    def test_garbled_line_fails_with_line_number(self, tmp_path, spec):
        archive = CampaignArchive.create(tmp_path / "camp", spec, target_epochs=3)
        for n in range(2):
            fake_epoch(archive, n)
        text = archive.checkpoints_path.read_text().splitlines()
        text[1] = text[1][: len(text[1]) // 2]  # truncate record 2
        archive.checkpoints_path.write_text("\n".join(text) + "\n")
        with pytest.raises(CampaignError, match="line 2"):
            archive.checkpoints()

    def test_gap_in_epochs_is_corruption(self, tmp_path, spec):
        archive = CampaignArchive.create(tmp_path / "camp", spec, target_epochs=3)
        record0 = fake_epoch(archive, 0)
        drift2 = spec.drift_for_epoch(2)
        bogus = CheckpointRecord(
            epoch=2, year=drift2.year, drift=drift2, digest=record0.digest
        )
        archive.record_epoch(bogus)
        with pytest.raises(CampaignError, match="out of order"):
            archive.checkpoints()

    def test_non_record_json_is_corruption(self, tmp_path, spec):
        archive = CampaignArchive.create(tmp_path / "camp", spec, target_epochs=1)
        archive.checkpoints_path.write_text('{"hello": "world"}\n')
        with pytest.raises(CampaignError, match="line 1"):
            archive.checkpoints()


class TestVerify:
    def test_digest_mismatch_detected(self, tmp_path, spec):
        archive = CampaignArchive.create(tmp_path / "camp", spec, target_epochs=1)
        fake_epoch(archive, 0)
        summary = archive.epoch_dir(0) / "summary.json"
        summary.write_text(summary.read_text().replace("40.0", "41.0"))
        with pytest.raises(CampaignError, match="digest mismatch"):
            archive.verify()

    def test_missing_epoch_directory_detected(self, tmp_path, spec):
        import shutil

        archive = CampaignArchive.create(tmp_path / "camp", spec, target_epochs=1)
        fake_epoch(archive, 0)
        shutil.rmtree(archive.epoch_dir(0))
        with pytest.raises(CampaignError, match="missing"):
            archive.verify()

    def test_intact_archive_verifies(self, tmp_path, spec):
        archive = CampaignArchive.create(tmp_path / "camp", spec, target_epochs=2)
        for n in range(2):
            fake_epoch(archive, n)
        archive.verify()  # should not raise


class TestCleanInterrupted:
    def test_partial_and_orphan_discarded(self, tmp_path, spec):
        archive = CampaignArchive.create(tmp_path / "camp", spec, target_epochs=3)
        fake_epoch(archive, 0)
        # Crash leftovers: a partial save and a published-but-
        # uncheckpointed epoch directory.
        archive.partial_dir(1).mkdir(parents=True)
        (archive.partial_dir(1) / "traces.json").write_text("{}")
        orphan = archive.epoch_dir(1)
        orphan.mkdir(parents=True)
        (orphan / "manifest.json").write_text("{}")
        discarded = archive.clean_interrupted()
        assert sorted(discarded) == [".epoch-0001.partial", "epoch-0001"]
        assert archive.epoch_dir(0).is_dir()
        assert not orphan.exists()
        assert not archive.partial_dir(1).exists()

    def test_checkpointed_epochs_survive(self, tmp_path, spec):
        archive = CampaignArchive.create(tmp_path / "camp", spec, target_epochs=2)
        for n in range(2):
            fake_epoch(archive, n)
        assert archive.clean_interrupted() == []
        archive.verify()


class TestMerge:
    def test_merge_is_idempotent(self, tmp_path, spec):
        archive = CampaignArchive.create(tmp_path / "camp", spec, target_epochs=2)
        records = [fake_epoch(archive, n) for n in range(2)]
        for record in records:
            assert archive.merge_epoch(record) is True
        before = archive.trend_path.read_bytes()
        # Re-merging a merged epoch is a no-op, byte for byte.
        for record in records:
            assert archive.merge_epoch(record) is False
        assert archive.trend_path.read_bytes() == before
        assert [p["epoch"] for p in archive.trend_points()] == [0, 1]

    def test_out_of_order_merge_sorts_points(self, tmp_path, spec):
        archive = CampaignArchive.create(tmp_path / "camp", spec, target_epochs=2)
        records = [fake_epoch(archive, n) for n in range(2)]
        archive.merge_epoch(records[1])
        archive.merge_epoch(records[0])
        assert [p["epoch"] for p in archive.trend_points()] == [0, 1]

    def test_merge_missing_summary_is_loud(self, tmp_path, spec):
        archive = CampaignArchive.create(tmp_path / "camp", spec, target_epochs=1)
        record = fake_epoch(archive, 0)
        (archive.epoch_dir(0) / "summary.json").unlink()
        with pytest.raises(CampaignError, match="summary.json"):
            archive.merge_epoch(record)
