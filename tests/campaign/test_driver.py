"""Driver tests: epoch execution, crash-window resume, determinism.

The interrupted-state matrix runs against a **fake** materialiser —
``_materialise_epoch`` is substituted with a fast deterministic stub so
the tests exercise the real checkpoint/rename/merge machinery without
simulating the Internet per case.  One end-to-end kill/resume test
(marked ``slow``) runs the real thing through the CLI, mirroring the
campaign-smoke CI lane.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.campaign import CampaignArchive, CampaignDriver, CampaignError, CampaignSpec

SRC = Path(__file__).resolve().parent.parent.parent / "src"


def fake_materialise(self: CampaignDriver, epoch: int, drift, directory: Path) -> None:
    """Deterministic stand-in for Study.run().save(directory)."""
    directory.mkdir(parents=True)
    (directory / "manifest.json").write_text(
        json.dumps(
            {
                "scale": self.archive.spec.scale,
                "seed": self.archive.spec.seed,
                "drift": drift.to_dict(),
            }
        )
    )
    (directory / "summary.json").write_text(
        json.dumps(
            {
                "section_4_1": {
                    "avg_udp_plain_reachable": 40.0,
                    "avg_pct_ect_given_plain": 95.0 - epoch,
                },
                "section_4_2": {
                    "pct_hops_passing": 90.0 + epoch,
                    "strip_events": 20 - epoch,
                },
                "section_4_3": {"pct_negotiated": 80.0 + epoch},
            }
        )
    )


@pytest.fixture
def fast_driver(monkeypatch):
    monkeypatch.setattr(CampaignDriver, "_materialise_epoch", fake_materialise)
    return CampaignDriver


def archive_bytes(directory: Path) -> dict[str, bytes]:
    return {
        p.relative_to(directory).as_posix(): p.read_bytes()
        for p in sorted(directory.rglob("*"))
        if p.is_file()
    }


class TestRun:
    def test_runs_all_epochs_and_reports(self, tmp_path, fast_driver):
        spec = CampaignSpec(scale=0.02, seed=7)
        driver = fast_driver.create(tmp_path / "camp", spec, target_epochs=3)
        assert driver.run() == 3
        archive = driver.archive
        assert len(archive.checkpoints()) == 3
        assert [p["epoch"] for p in archive.trend_points()] == [0, 1, 2]
        report = archive.report_path.read_text()
        assert "Longitudinal ECN campaign" in report
        assert "2015.33" in report

    def test_completed_campaign_run_is_noop(self, tmp_path, fast_driver):
        spec = CampaignSpec(scale=0.02, seed=7)
        driver = fast_driver.create(tmp_path / "camp", spec, target_epochs=2)
        driver.run()
        before = archive_bytes(tmp_path / "camp")
        resumed = fast_driver.resume(tmp_path / "camp")
        assert resumed.run() == 0
        assert archive_bytes(tmp_path / "camp") == before

    def test_extend_target_runs_only_new_epochs(self, tmp_path, fast_driver):
        spec = CampaignSpec(scale=0.02, seed=7)
        fast_driver.create(tmp_path / "camp", spec, target_epochs=2).run()
        resumed = fast_driver.resume(tmp_path / "camp", target_epochs=4)
        assert resumed.run() == 2
        assert len(resumed.archive.checkpoints()) == 4


class TestResumeCrashWindows:
    """Each crash window, emulated on disk, resumes to identical bytes."""

    def control(self, fast_driver, directory: Path, epochs: int = 3) -> dict[str, bytes]:
        spec = CampaignSpec(scale=0.02, seed=7)
        fast_driver.create(directory, spec, target_epochs=epochs).run()
        return archive_bytes(directory)

    def interrupted(self, fast_driver, directory: Path, epochs: int = 3) -> CampaignArchive:
        """A campaign stopped cleanly after epoch 1 of ``epochs``."""
        spec = CampaignSpec(scale=0.02, seed=7)
        driver = fast_driver.create(directory, spec, target_epochs=1)
        driver.run()
        driver.archive.extend_target(epochs)
        return driver.archive

    def test_resume_from_epoch_boundary(self, tmp_path, fast_driver):
        control = self.control(fast_driver, tmp_path / "control")
        archive = self.interrupted(fast_driver, tmp_path / "crashed")
        fast_driver.resume(archive.directory).run()
        assert archive_bytes(archive.directory) == control

    def test_resume_discards_partial_save(self, tmp_path, fast_driver):
        control = self.control(fast_driver, tmp_path / "control")
        archive = self.interrupted(fast_driver, tmp_path / "crashed")
        partial = archive.partial_dir(1)
        partial.mkdir(parents=True)
        (partial / "traces.json").write_text("torn")
        fast_driver.resume(archive.directory).run()
        assert archive_bytes(archive.directory) == control

    def test_resume_discards_orphan_epoch(self, tmp_path, fast_driver):
        # The driver died between os.replace and the checkpoint write:
        # the epoch directory exists but no record points at it.
        control = self.control(fast_driver, tmp_path / "control")
        archive = self.interrupted(fast_driver, tmp_path / "crashed")
        orphan = archive.epoch_dir(1)
        orphan.mkdir(parents=True)
        (orphan / "manifest.json").write_text("{}")
        fast_driver.resume(archive.directory).run()
        assert archive_bytes(archive.directory) == control

    def test_resume_merges_checkpointed_unmerged_epoch(self, tmp_path, fast_driver):
        # The driver died between the checkpoint write and the trend
        # merge: resume's final merge pass absorbs it idempotently.
        control = self.control(fast_driver, tmp_path / "control")
        spec = CampaignSpec(scale=0.02, seed=7)
        driver = fast_driver.create(tmp_path / "crashed", spec, target_epochs=2)
        driver.run()
        driver.archive.extend_target(3)
        trend = json.loads(driver.archive.trend_path.read_text())
        trend["points"] = trend["points"][:1]  # epoch 1 checkpointed, unmerged
        driver.archive.trend_path.write_text(json.dumps(trend, indent=2))
        fast_driver.resume(tmp_path / "crashed").run()
        assert archive_bytes(tmp_path / "crashed") == control

    def test_resume_refuses_corrupt_checkpoint(self, tmp_path, fast_driver):
        archive = self.interrupted(fast_driver, tmp_path / "crashed")
        text = archive.checkpoints_path.read_text()
        archive.checkpoints_path.write_text(text[: len(text) // 2])
        with pytest.raises(CampaignError, match="corrupt checkpoint"):
            fast_driver.resume(archive.directory)

    def test_resume_refuses_tampered_epoch(self, tmp_path, fast_driver):
        archive = self.interrupted(fast_driver, tmp_path / "crashed")
        summary = archive.epoch_dir(0) / "summary.json"
        summary.write_text(summary.read_text().replace("40.0", "999.0"))
        with pytest.raises(CampaignError, match="digest mismatch"):
            fast_driver.resume(archive.directory)


@pytest.mark.slow
class TestKillResumeEndToEnd:
    """The campaign-smoke contract, in miniature: SIGKILL + resume."""

    def run_cli(self, args: list[str], kill: str | None = None):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC)
        env.pop("ECNUDP_CAMPAIGN_KILL", None)
        if kill:
            env["ECNUDP_CAMPAIGN_KILL"] = kill
        return subprocess.run(
            [sys.executable, "-m", "repro", *args],
            env=env,
            capture_output=True,
            text=True,
        )

    def test_sigkill_mid_epoch_resumes_byte_identical(self, tmp_path):
        common = ["--epochs", "2", "--scale", "0.02", "--seed", "7",
                  "--cadence", "3.5"]
        killed = self.run_cli(
            ["campaign", "run", "--dir", str(tmp_path / "a"), *common],
            kill="1:partial",
        )
        assert killed.returncode == -signal.SIGKILL
        resumed = self.run_cli(["campaign", "resume", "--dir", str(tmp_path / "a")])
        assert resumed.returncode == 0, resumed.stderr
        control = self.run_cli(
            ["campaign", "run", "--dir", str(tmp_path / "b"), *common]
        )
        assert control.returncode == 0, control.stderr
        assert archive_bytes(tmp_path / "a") == archive_bytes(tmp_path / "b")
