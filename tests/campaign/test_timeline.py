"""Drift-model tests: interpolation, purity, parameter rewriting."""

from __future__ import annotations

import json

import pytest

from repro.scenario.parameters import params_for_scale
from repro.scenario.timeline import (
    FRESH_LOOK,
    FRESH_LOOK_YEAR,
    FROZEN,
    PAPER_YEAR,
    EpochDrift,
    TimelineError,
    apply_drift,
    drifted_params,
    epoch_world_seed,
    piecewise_linear,
    timeline_by_name,
)


class TestPiecewiseLinear:
    def test_interpolates_between_anchors(self):
        anchors = ((2015.0, 1.0), (2023.0, 0.2))
        assert piecewise_linear(anchors, 2019.0) == pytest.approx(0.6)

    def test_clamps_outside_anchor_range(self):
        anchors = ((2015.0, 1.0), (2023.0, 0.2))
        assert piecewise_linear(anchors, 1999.0) == 1.0
        assert piecewise_linear(anchors, 2040.0) == pytest.approx(0.2)

    def test_single_anchor_is_constant(self):
        assert piecewise_linear(((2015.0, 0.7),), 2030.0) == 0.7

    def test_empty_anchors_rejected(self):
        with pytest.raises(TimelineError):
            piecewise_linear((), 2015.0)


class TestTimeline:
    def test_fresh_look_endpoints_match_the_papers(self):
        at_2015 = FRESH_LOOK.drift_at(PAPER_YEAR)
        assert at_2015.bleacher_scale == 1.0
        assert at_2015.negotiate_rate == pytest.approx(0.82)
        at_2022 = FRESH_LOOK.drift_at(FRESH_LOOK_YEAR)
        assert at_2022.bleacher_scale == pytest.approx(0.12)
        assert at_2022.negotiate_rate == pytest.approx(0.935)
        # Bleaching collapses faster than hard blackholing declines.
        assert at_2022.bleacher_scale < at_2022.blackhole_scale

    def test_frozen_timeline_never_drifts(self):
        for year in (PAPER_YEAR, 2020.0, 2035.0):
            drift = FROZEN.drift_at(year)
            assert drift.bleacher_scale == 1.0
            assert drift.negotiate_rate == pytest.approx(0.82)

    def test_drift_for_epoch_is_pure(self):
        a = FRESH_LOOK.drift_for_epoch(seed=42, epoch=3)
        b = FRESH_LOOK.drift_for_epoch(seed=42, epoch=3)
        assert a == b
        assert hash(a) == hash(b)

    def test_pool_churn_sets_distinct_world_seeds(self):
        seeds = {
            FRESH_LOOK.drift_for_epoch(seed=42, epoch=n).world_seed
            for n in range(8)
        }
        assert None not in seeds
        assert len(seeds) == 8

    def test_no_pool_churn_keeps_campaign_seed(self):
        drift = FRESH_LOOK.drift_for_epoch(seed=42, epoch=3, pool_churn=False)
        assert drift.world_seed is None

    def test_negative_epoch_rejected(self):
        with pytest.raises(TimelineError):
            FRESH_LOOK.drift_for_epoch(seed=1, epoch=-1)

    def test_unknown_timeline_name(self):
        with pytest.raises(TimelineError, match="unknown timeline"):
            timeline_by_name("no-such-timeline")


class TestEpochWorldSeed:
    def test_pure_and_distinct(self):
        assert epoch_world_seed(7, 0) == epoch_world_seed(7, 0)
        assert epoch_world_seed(7, 0) != epoch_world_seed(7, 1)
        assert epoch_world_seed(7, 0) != epoch_world_seed(8, 0)

    def test_fits_in_31_bits(self):
        for epoch in range(32):
            assert 0 <= epoch_world_seed(20150401, epoch) < 2**31


class TestEpochDrift:
    def test_json_round_trip_is_exact(self):
        drift = FRESH_LOOK.drift_for_epoch(seed=42, epoch=5)
        wire = json.loads(json.dumps(drift.to_dict()))
        restored = EpochDrift.from_dict(wire)
        assert restored == drift
        assert hash(restored) == hash(drift)

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(TimelineError):
            EpochDrift.from_dict({"no": "year"})
        with pytest.raises(TimelineError):
            EpochDrift.from_dict({"year": "not-a-number"})


class TestApplyDrift:
    def test_none_drift_is_the_legacy_mapping(self):
        assert drifted_params(0.1, 7, None) == params_for_scale(0.1, 7)

    def test_collapse_scales_middlebox_population(self):
        params = params_for_scale(0.1, 7)
        drift = EpochDrift(
            year=2022.5, bleacher_scale=0.12, blackhole_scale=0.45
        )
        drifted = apply_drift(params, drift)
        assert drifted.middleboxes.bleacher_router_fraction == pytest.approx(
            params.middleboxes.bleacher_router_fraction * 0.12
        )
        assert (
            drifted.middleboxes.udp_ect_blocked_servers
            < params.middleboxes.udp_ect_blocked_servers
        )
        # Floors: a collapse never zeroes a middlebox class entirely.
        assert drifted.middleboxes.udp_ect_blocked_servers >= 1
        assert drifted.middleboxes.flaky_ect_blocked_servers >= 1
        assert (
            drifted.middleboxes.any_ect_blocked_servers
            <= drifted.middleboxes.udp_ect_blocked_servers
        )

    def test_negotiate_rate_is_absolute_and_capped(self):
        params = params_for_scale(0.1, 7)
        drifted = apply_drift(params, EpochDrift(year=2030.0, negotiate_rate=0.999))
        # Stays clear of the reflect/drop-syn shares (deployment raises
        # if the policy mix exceeds 1.0).
        assert drifted.servers.ecn_negotiate_fraction == pytest.approx(0.98)
        total = (
            drifted.servers.ecn_negotiate_fraction
            + drifted.servers.ecn_reflect_fraction
            + drifted.servers.ecn_drop_syn_fraction
        )
        assert total <= 1.0

    def test_world_seed_replaces_scenario_seed(self):
        params = params_for_scale(0.1, 7)
        drifted = apply_drift(params, EpochDrift(year=2016.0, world_seed=12345))
        assert drifted.seed == 12345
        unchurned = apply_drift(params, EpochDrift(year=2016.0))
        assert unchurned.seed == 7

    def test_drifted_world_builds_with_same_population(self):
        from repro.scenario.internet import SyntheticInternet

        base = SyntheticInternet(drifted_params(0.02, 7, None))
        drift = FRESH_LOOK.drift_for_epoch(seed=7, epoch=7, pool_churn=False)
        drifted = SyntheticInternet(drifted_params(0.02, 7, drift))
        # Drift rewrites behaviour rates, not the population size.
        assert len(drifted.servers) == len(base.servers)
        assert drifted.params.middleboxes != base.params.middleboxes
