"""The public API surface: exports exist and __all__ is truthful."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.netsim",
    "repro.tcp",
    "repro.protocols.ntp",
    "repro.protocols.dns",
    "repro.protocols.http",
    "repro.protocols.rtp",
    "repro.protocols.quic",
    "repro.geo",
    "repro.asmap",
    "repro.scenario",
    "repro.core",
    "repro.core.analysis",
    "repro.stats",
    "repro.reporting",
    "repro.runner",
    "repro.obs",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_all_entries_resolve(name):
    module = importlib.import_module(name)
    assert hasattr(module, "__all__"), f"{name} should define __all__"
    for export in module.__all__:
        assert hasattr(module, export), f"{name}.{export} missing"


@pytest.mark.parametrize("name", PACKAGES)
def test_all_is_sorted(name):
    """Sorted __all__ keeps diffs reviewable; enforce it."""
    module = importlib.import_module(name)
    entries = list(module.__all__)
    assert entries == sorted(entries), f"{name}.__all__ is not sorted"


def test_top_level_quickstart_names():
    import repro

    for needed in (
        "Study",
        "SyntheticInternet",
        "MeasurementApplication",
        "ECN",
        "probe_udp",
        "probe_tcp",
        "run_traceroute",
        "scaled_params",
        "default_params",
    ):
        assert needed in repro.__all__

    assert repro.__version__


def test_docstrings_on_public_classes():
    """Every exported class/function carries a docstring."""
    for name in PACKAGES:
        module = importlib.import_module(name)
        for export in module.__all__:
            obj = getattr(module, export)
            if callable(obj) or isinstance(obj, type):
                assert obj.__doc__, f"{name}.{export} lacks a docstring"
