"""Tests for trend fitting (the Figure 6 machinery)."""

import math

import pytest

from repro.core.analysis.tcp_ecn import HISTORICAL_STUDIES
from repro.stats.timeseries import fit_logistic, linear_trend


class TestLogisticFit:
    def test_recovers_synthetic_parameters(self):
        midpoint, rate, ceiling = 2013.0, 0.5, 100.0
        times = [2000 + i for i in range(16)]
        values = [ceiling / (1 + math.exp(-rate * (t - midpoint))) for t in times]
        fit = fit_logistic(times, values, ceiling=ceiling)
        assert fit.midpoint == pytest.approx(midpoint, abs=0.3)
        assert fit.rate == pytest.approx(rate, abs=0.1)
        assert fit.rmse < 1.0

    def test_predict_monotone_increasing(self):
        fit = fit_logistic([2000, 2005, 2010, 2015], [1, 5, 30, 80])
        values = [fit.predict(t) for t in range(1995, 2025)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_prediction_bounded_by_ceiling(self):
        fit = fit_logistic([2000, 2005, 2010, 2015], [1, 5, 30, 80], ceiling=100)
        assert 0 < fit.predict(2050) <= 100

    def test_residual(self):
        fit = fit_logistic([2000, 2005, 2010, 2015], [1, 5, 30, 80])
        assert fit.residual(2010, fit.predict(2010)) == 0.0

    def test_needs_three_points(self):
        with pytest.raises(ValueError):
            fit_logistic([2000, 2001], [1, 2])

    def test_parallel_inputs_required(self):
        with pytest.raises(ValueError):
            fit_logistic([2000, 2001, 2002], [1, 2])

    def test_historical_ecn_series_fits_reasonably(self):
        """The real Figure 6 inputs: growth curve fits with modest
        error and predicts meaningful 2015 deployment."""
        times = [p.year for p in HISTORICAL_STUDIES]
        values = [p.pct_negotiated for p in HISTORICAL_STUDIES]
        fit = fit_logistic(times, values)
        assert fit.rmse < 6.0
        assert 2012 < fit.midpoint < 2017
        # The curve must be steeply rising through 2014-2015.
        assert fit.predict(2015.5) > fit.predict(2014.5) > fit.predict(2013.5)


class TestLinearTrend:
    def test_exact_line(self):
        slope, intercept = linear_trend([0, 1, 2], [1, 3, 5])
        assert slope == pytest.approx(2.0)
        assert intercept == pytest.approx(1.0)

    def test_flat(self):
        slope, _ = linear_trend([0, 1, 2], [4, 4, 4])
        assert slope == pytest.approx(0.0)

    def test_degenerate_times_rejected(self):
        with pytest.raises(ValueError):
            linear_trend([1, 1], [2, 3])

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            linear_trend([1], [2])
