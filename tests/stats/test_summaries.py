"""Tests for summary statistics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stats.summaries import (
    bootstrap_ci,
    mean,
    median,
    percentile,
    stdev,
)


class TestBasics:
    def test_mean(self):
        assert mean([1, 2, 3, 4]) == 2.5

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])

    def test_median_odd(self):
        assert median([3, 1, 2]) == 2

    def test_median_even(self):
        assert median([4, 1, 3, 2]) == 2.5

    def test_stdev_known(self):
        assert stdev([2, 4, 4, 4, 5, 5, 7, 9]) == pytest.approx(2.138, abs=1e-3)

    def test_stdev_single_value(self):
        assert stdev([5.0]) == 0.0

    def test_percentile_bounds(self):
        data = list(range(101))
        assert percentile(data, 0) == 0
        assert percentile(data, 100) == 100
        assert percentile(data, 50) == 50

    def test_percentile_interpolates(self):
        assert percentile([0, 10], 25) == 2.5

    def test_percentile_range_check(self):
        with pytest.raises(ValueError):
            percentile([1], 101)


@given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50))
def test_mean_within_bounds(values):
    assert min(values) - 1e-6 <= mean(values) <= max(values) + 1e-6


@given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50), st.floats(0, 100))
def test_percentile_within_bounds(values, pct):
    assert min(values) <= percentile(values, pct) <= max(values)


@given(st.lists(st.floats(-1e3, 1e3), min_size=2, max_size=30))
def test_stdev_nonnegative(values):
    assert stdev(values) >= 0


class TestBootstrap:
    def test_ci_contains_estimate(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0] * 10
        ci = bootstrap_ci(values, resamples=500, seed=1)
        assert ci.low <= ci.estimate <= ci.high
        assert ci.contains(3.0)

    def test_ci_narrows_with_more_data(self):
        import random

        rng = random.Random(3)
        small = [rng.gauss(10, 2) for _ in range(10)]
        large = [rng.gauss(10, 2) for _ in range(1000)]
        ci_small = bootstrap_ci(small, resamples=300, seed=1)
        ci_large = bootstrap_ci(large, resamples=300, seed=1)
        assert (ci_large.high - ci_large.low) < (ci_small.high - ci_small.low)

    def test_deterministic_for_seed(self):
        values = [1.0, 5.0, 9.0, 2.0]
        a = bootstrap_ci(values, resamples=200, seed=7)
        b = bootstrap_ci(values, resamples=200, seed=7)
        assert (a.low, a.high) == (b.low, b.high)

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci([], resamples=10)
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], confidence=1.5)
