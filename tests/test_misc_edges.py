"""Edge cases across modules that deserve explicit coverage."""

import pytest

from repro.netsim.errors import CodecError
from repro.protocols.http.client import fetch
from repro.protocols.http.messages import HTTPRequest
from repro.protocols.http.server import PoolWebServer
from repro.tcp.connection import ConnState, TCPStack


class TestHTTPServerEdges:
    def test_post_rejected_with_405(self, two_host_net):
        net, client, server = two_host_net
        PoolWebServer(server)
        responses = []
        stack = TCPStack(client)
        conn = stack.connect(server.addr, 80)
        buffer = []
        conn.on_established = lambda c: c.send(
            HTTPRequest(method="POST", target="/", body=b"x").encode()
        )
        conn.on_data = lambda c, data: buffer.append(data)
        net.scheduler.run()
        assert b"405" in b"".join(buffer)

    def test_garbage_request_gets_400(self, two_host_net):
        net, client, server = two_host_net
        PoolWebServer(server)
        stack = TCPStack(client)
        buffer = []
        conn = stack.connect(server.addr, 80)
        conn.on_established = lambda c: c.send(b"\xff\xfe garbage\r\n\r\n")
        conn.on_data = lambda c, data: buffer.append(data)
        net.scheduler.run()
        assert b"400" in b"".join(buffer)

    def test_pipelined_header_arrival(self, two_host_net):
        """A request split across two segments is reassembled."""
        net, client, server = two_host_net
        web = PoolWebServer(server)
        stack = TCPStack(client)
        buffer = []
        conn = stack.connect(server.addr, 80)

        def send_in_pieces(c):
            c.send(b"GET / HTTP/1.1\r\nHost: x")
            net.scheduler.schedule(0.1, lambda: c.send(b"\r\n\r\n"))

        conn.on_established = send_in_pieces
        conn.on_data = lambda c, data: buffer.append(data)
        net.scheduler.run()
        assert web.requests_served == 1
        assert b"302" in b"".join(buffer)


class TestTCPSimultaneousishClose:
    def test_both_sides_close_cleanly(self, two_host_net):
        net, client, server = two_host_net
        stack_s = TCPStack(server)
        accepted = []
        stack_s.listen(80, accepted.append)
        stack_c = TCPStack(client)
        conn = stack_c.connect(server.addr, 80)
        net.scheduler.run()
        # Close both ends in the same scheduler round.
        conn.close()
        accepted[0].close()
        net.scheduler.run()
        assert conn.state in (ConnState.CLOSED, ConnState.TIME_WAIT, ConnState.FAILED)
        assert accepted[0].state in (
            ConnState.CLOSED,
            ConnState.TIME_WAIT,
            ConnState.FAILED,
        )
        # Neither demux table leaks the connection forever.
        net.scheduler.run_until(net.scheduler.now + 120.0)
        assert conn.key not in stack_c.connections
        assert accepted[0].key not in stack_s.connections


class TestHTTPFetchAgainstOfflineWeb:
    def test_fetch_http_against_ntp_only_host(self, fresh_world):
        """Pool hosts without web servers: fetch resolves, not ok."""
        world = fresh_world
        target = next(s for s in world.servers if s.web is None)
        host = world.vantage_hosts["ec2-sydney"]
        results = []
        fetch(host, target.addr, use_ecn=True, callback=results.append, deadline=6.0)
        world.network.scheduler.run()
        assert len(results) == 1
        assert not results[0].ok
        assert not results[0].ecn_negotiated


class TestDNSNameEdgeCases:
    def test_long_offsets_not_compressed(self):
        """Suffix offsets beyond the 14-bit pointer range must not be
        emitted as pointers."""
        from repro.protocols.dns.message import decode_name, encode_name

        offsets = {}
        base = 0x4000 + 10  # beyond pointer range
        wire = encode_name("deep.pool.ntp.org", offsets, base)
        # No suffix was registered at an unreachable offset.
        assert all(off < 0x4000 for off in offsets.values())
        # And the name itself still decodes standalone.
        name, _ = decode_name(wire, 0)
        assert name == "deep.pool.ntp.org"

    def test_max_name_length_enforced(self):
        from repro.protocols.dns.message import encode_name

        label = "a" * 60
        too_long = ".".join([label] * 5)
        with pytest.raises(CodecError):
            encode_name(too_long)
