"""Tests for report assembly and machine-readable exports."""

import csv
import json

import pytest

from repro.core.analysis import (
    DifferentialAnalysis,
    analyze_campaign,
    analyze_correlation,
    analyze_geography,
    analyze_reachability,
    analyze_tcp_ecn,
)
from repro.reporting.export import export_summary_json, export_traces_csv
from repro.reporting.report import (
    full_report,
    render_figure2,
    render_figure4,
    render_figure5,
    render_figure6,
    render_table1,
    render_table2,
)


@pytest.fixture(scope="module")
def analyses(study_results):
    world, trace_set, campaign = study_results
    return {
        "world": world,
        "traces": trace_set,
        "campaign": campaign,
        "geo": analyze_geography(trace_set.server_addrs, world.geo),
        "reach": analyze_reachability(trace_set),
        "diff_a": DifferentialAnalysis(trace_set, "plain-only"),
        "diff_b": DifferentialAnalysis(trace_set, "ect-only"),
        "tcp": analyze_tcp_ecn(trace_set),
        "paths": analyze_campaign(campaign, world.noisy_as_map),
        "corr": analyze_correlation(trace_set),
    }


class TestRenderers:
    def test_table1_lists_all_regions(self, analyses):
        text = render_table1(analyses["geo"])
        for region in ("Africa", "Asia", "Europe", "Unknown", "Total"):
            assert region in text

    def test_figure2_has_all_vantages_in_paper_order(self, analyses):
        text = render_figure2(analyses["reach"])
        assert text.index("Perkins home") < text.index("McQuistin home")
        assert text.index("McQuistin home") < text.index("EC2 Virginia")
        assert "Figure 2a" in text and "Figure 2b" in text

    def test_figure4_reports_statistics(self, analyses):
        text = render_figure4(analyses["campaign"], analyses["paths"])
        assert "hops measured" in text
        assert "strip" in text
        assert "AS boundaries" in text
        # Paths with strips render X glyphs.
        assert "X" in text

    def test_figure5_reports_averages(self, analyses):
        text = render_figure5(analyses["tcp"])
        assert "average reachable" in text
        assert "%" in text

    def test_figure6_compares_to_trend(self, analyses):
        text = render_figure6(analyses["tcp"].pct_negotiated)
        assert "logistic trend" in text
        assert "measured" in text

    def test_table2_rows(self, analyses):
        text = render_table2(analyses["corr"])
        assert "McQuistin home" in text
        assert "EC2 Virginia" in text

    def test_full_report_contains_every_artifact(self, analyses):
        text = full_report(
            analyses["geo"],
            analyses["reach"],
            analyses["diff_a"],
            analyses["diff_b"],
            analyses["tcp"],
            analyses["campaign"],
            analyses["paths"],
            analyses["corr"],
        )
        for marker in (
            "Table 1",
            "Figure 1",
            "Figure 2a",
            "Figure 3a",
            "Figure 4",
            "Figure 5",
            "Figure 6",
            "Table 2",
            "Headline",
            "98.97%",  # the paper-side numbers quoted for comparison
        ):
            assert marker in text, marker


class TestExports:
    def test_summary_json(self, analyses, tmp_path):
        path = tmp_path / "summary.json"
        payload = export_summary_json(
            path,
            analyses["geo"],
            analyses["reach"],
            analyses["tcp"],
            analyses["paths"],
            analyses["corr"],
        )
        on_disk = json.loads(path.read_text())
        assert on_disk == payload
        assert on_disk["section_4_1"]["avg_pct_ect_given_plain"] > 90
        assert on_disk["section_4_3"]["pct_negotiated"] > 70
        assert on_disk["table1"]["total"] == len(analyses["traces"].server_addrs)
        assert len(on_disk["table2"]) == 13

    def test_figure_data_csvs(self, analyses, tmp_path):
        from repro.reporting.export import export_figure_data

        written = export_figure_data(
            tmp_path / "figs",
            analyses["reach"],
            analyses["tcp"],
            analyses["diff_a"],
            analyses["diff_b"],
            analyses["tcp"].pct_negotiated,
        )
        names = {p.name for p in written}
        assert names == {"figure2.csv", "figure3a.csv", "figure3b.csv", "figure6.csv"}
        with open(tmp_path / "figs" / "figure2.csv") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(analyses["traces"].traces)
        assert all(float(r["pct_2a"]) > 0 for r in rows)
        with open(tmp_path / "figs" / "figure6.csv") as handle:
            series = list(csv.DictReader(handle))
        assert series[-1]["study"] == "measured"
        with open(tmp_path / "figs" / "figure3a.csv") as handle:
            diff_rows = list(csv.DictReader(handle))
        vantages = {r["vantage"] for r in diff_rows}
        assert len(vantages) == 13
        assert len(diff_rows) == 13 * len(analyses["traces"].server_addrs)

    def test_traces_csv(self, analyses, tmp_path):
        path = tmp_path / "traces.csv"
        rows = export_traces_csv(path, analyses["traces"])
        with open(path) as handle:
            reader = csv.DictReader(handle)
            first = next(reader)
            count = 1 + sum(1 for _ in reader)
        assert rows == count
        expected = sum(len(t.outcomes) for t in analyses["traces"])
        assert rows == expected
        assert set(first) >= {
            "trace_id",
            "vantage",
            "server_addr",
            "udp_plain",
            "udp_ect",
            "ecn_negotiated",
        }
