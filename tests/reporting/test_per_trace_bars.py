"""Tests for the per-trace bar rendering (the paper's Figure 2 form)."""

from repro.reporting.figures import per_trace_bars


class TestPerTraceBars:
    def test_one_column_per_trace(self):
        text = per_trace_bars(
            [("Perkins home", [99.0, 98.0, 97.5]), ("EC2 Vir", [98.0, 98.5])]
        )
        bar_line = text.splitlines()[0]
        inner = bar_line.split("|")[1]
        # 3 + 2 bars with a single separating space.
        assert len(inner) == 3 + 1 + 2

    def test_height_tracks_value(self):
        text = per_trace_bars([("v", [90.0, 100.0])], floor=90.0, ceiling=100.0)
        inner = text.splitlines()[0].split("|")[1]
        assert inner[0] == " "  # at the floor
        assert inner[1] == "█"  # at the ceiling

    def test_values_clamped(self):
        text = per_trace_bars([("v", [50.0, 150.0])], floor=90.0, ceiling=100.0)
        inner = text.splitlines()[0].split("|")[1]
        assert inner == " █"

    def test_axis_labels(self):
        text = per_trace_bars([("v", [95.0])])
        assert "100%" in text
        assert "90%" in text

    def test_empty(self):
        assert per_trace_bars([]) == "(no data)"

    def test_group_label_row_present(self):
        text = per_trace_bars([("McQuistin home", [95.0] * 6)])
        assert "home" in text.splitlines()[-1]
