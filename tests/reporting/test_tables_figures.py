"""Tests for the text table and figure renderers."""

import pytest

from repro.reporting.figures import (
    bar_chart,
    spike_plot,
    time_series,
    traceroute_tree,
    world_map,
)
from repro.reporting.tables import render_table


class TestTable:
    def test_alignment_and_title(self):
        text = render_table(
            ("Region", "Count"),
            [("Europe", 1664), ("Asia", 190)],
            title="Table 1",
            align_right=(1,),
        )
        lines = text.splitlines()
        assert lines[0] == "Table 1"
        assert "Europe" in text and "1664" in text
        # Right-aligned numbers end the line.
        assert lines[-1].endswith("190")

    def test_float_formatting(self):
        text = render_table(("x",), [(98.973456,)])
        assert "98.97" in text

    def test_column_widths_fit_content(self):
        text = render_table(("a", "b"), [("longvalue", 1)])
        header, separator, row = text.splitlines()
        assert len(separator) >= len("longvalue")


class TestBarChart:
    def test_basic_rendering(self):
        text = bar_chart(["one", "two"], [50.0, 100.0], width=10, floor=0, ceiling=100)
        lines = text.splitlines()
        assert "#####....." in lines[0]
        assert "##########" in lines[1]
        assert "50.00" in lines[0]

    def test_floor_zoom(self):
        """The Figure 2 y-axis starts at 90%."""
        text = bar_chart(["v"], [95.0], width=10, floor=90, ceiling=100)
        assert "#####....." in text

    def test_values_clamped(self):
        text = bar_chart(["v"], [150.0], width=10, floor=0, ceiling=100)
        assert "##########" in text

    def test_parallel_validation(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_empty(self):
        assert bar_chart([], []) == "(no data)"


class TestSpikePlot:
    def test_spikes_survive_downsampling(self):
        """The Figure 3 invariant: a single 100% spike among thousands
        of zeros must stay visible (max-pooling, not averaging)."""
        values = [0.0] * 1000
        values[500] = 1.0
        text = spike_plot(values, width=50)
        assert "█" in text

    def test_zero_everywhere(self):
        text = spike_plot([0.0] * 100, width=20)
        assert "█" not in text

    def test_height_label(self):
        assert spike_plot([0.5], height_label="row").startswith("row ")

    def test_empty(self):
        assert spike_plot([]) == "(no data)"


class TestTimeSeries:
    def test_markers_plotted(self):
        text = time_series([(2000, 1.0, "Medina"), (2015, 82.0, "measured")])
        assert "M" in text
        assert "2000" in text and "2015" in text

    def test_y_axis_labels(self):
        text = time_series([(2000, 0.0, "x")], height=5)
        assert "100%" in text and "0%" in text

    def test_empty(self):
        assert time_series([]) == "(no data)"


class TestWorldMap:
    def test_density_shading(self):
        europe = [(50.0, 10.0)] * 50
        lonely = [(-30.0, -60.0)]
        text = world_map(europe + lonely, width=40, height=12)
        assert "@" in text or "#" in text  # dense cluster
        assert "." in text  # lonely point

    def test_out_of_range_points_ignored(self):
        text = world_map([(999.0, 999.0)], width=10, height=5)
        assert set(text) <= {" ", "\n"}

    def test_empty(self):
        assert world_map([]) == "(no data)"


class TestTracerouteTree:
    def test_glyphs(self):
        text = traceroute_tree([[(1, True), (2, False), (3, False)]])
        assert "-ooXX" not in text  # sanity: exactly per-hop glyphs
        assert "oXX" in text

    def test_truncation_notice(self):
        paths = [[(1, True)]] * 30
        text = traceroute_tree(paths, max_paths=5)
        assert "25 more paths" in text
