"""Tests for the synthetic Internet builder (using the shared world)."""

import pytest

from repro.geo.regions import Region
from repro.netsim.ecn import ECN
from repro.netsim.ipv4 import PROTO_TCP, PROTO_UDP
from repro.protocols.ntp.client import query_server
from repro.scenario.internet import SyntheticInternet
from repro.scenario.parameters import scaled_params
from repro.scenario.vantages import VANTAGES


class TestStructure:
    def test_all_vantages_present(self, shared_world):
        assert set(shared_world.vantage_hosts) == {spec.key for spec in VANTAGES}
        assert len(shared_world.vantage_hosts) == 13

    def test_server_population_matches_params(self, shared_world):
        assert len(shared_world.servers) == shared_world.params.servers.total

    def test_region_distribution_matches_params(self, shared_world):
        by_region = {}
        for server in shared_world.servers:
            by_region[server.region] = by_region.get(server.region, 0) + 1
        assert by_region == {
            r: c for r, c in shared_world.params.servers.region_counts.items() if c
        }

    def test_topology_connected(self, shared_world):
        shared_world.topology.validate()

    def test_every_server_runs_ntp(self, shared_world):
        assert all(server.ntp is not None for server in shared_world.servers)

    def test_web_server_fraction(self, shared_world):
        expected = round(
            len(shared_world.servers) * shared_world.params.servers.web_server_fraction
        )
        actual = sum(1 for s in shared_world.servers if s.web is not None)
        assert abs(actual - expected) <= 1

    def test_asmap_knows_every_server(self, shared_world):
        for server in shared_world.servers:
            assert shared_world.as_map.lookup(server.addr) == server.asn

    def test_geo_knows_located_servers(self, shared_world):
        for server in shared_world.servers:
            record = shared_world.geo.lookup(server.addr)
            assert record.region is server.region

    def test_unknown_region_servers_unlocatable(self, shared_world):
        unknowns = [s for s in shared_world.servers if s.region is Region.UNKNOWN]
        assert unknowns
        for server in unknowns:
            assert shared_world.geo.region_of(server.addr) is Region.UNKNOWN

    def test_deterministic_build(self):
        params = scaled_params(0.02, seed=5)
        first = SyntheticInternet(params)
        second = SyntheticInternet(params)
        assert [s.addr for s in first.servers] == [s.addr for s in second.servers]
        assert first.ground_truth.udp_ect_blocked == second.ground_truth.udp_ect_blocked
        assert first.ground_truth.bleacher_routers == second.ground_truth.bleacher_routers


class TestGroundTruth:
    def test_middlebox_counts(self, shared_world):
        mb = shared_world.params.middleboxes
        truth = shared_world.ground_truth
        assert len(truth.udp_ect_blocked) + len(truth.any_ect_blocked) == (
            mb.udp_ect_blocked_servers
        )
        assert len(truth.flaky_ect_blocked) == mb.flaky_ect_blocked_servers
        assert len(truth.not_ect_blocked) == mb.not_ect_blocked_servers
        assert len(truth.phoenix) == mb.phoenix_servers

    def test_special_servers_never_offline(self, shared_world):
        truth = shared_world.ground_truth
        specials = (
            truth.udp_ect_blocked
            | truth.any_ect_blocked
            | truth.not_ect_blocked
            | truth.phoenix
        )
        assert not specials & truth.offline_batch2

    def test_batch2_offline_superset_of_batch1(self, shared_world):
        truth = shared_world.ground_truth
        assert truth.offline_batch1 <= truth.offline_batch2
        assert len(truth.offline_batch2) > len(truth.offline_batch1)

    def test_blocked_servers_have_udp_scoped_filters(self, shared_world):
        for addr in shared_world.ground_truth.udp_ect_blocked:
            filters = shared_world.server_by_addr(addr).host.inbound_filters
            assert any(f.protocols == frozenset({PROTO_UDP}) for f in filters)

    def test_any_blocked_servers_cover_tcp(self, shared_world):
        for addr in shared_world.ground_truth.any_ect_blocked:
            filters = shared_world.server_by_addr(addr).host.inbound_filters
            assert any(
                f.protocols == frozenset({PROTO_UDP, PROTO_TCP}) for f in filters
            )

    def test_udp_blocked_servers_negotiate_ecn_over_tcp(self, shared_world):
        """The §4.4 design: payload-protocol-discriminating firewalls."""
        for addr in shared_world.ground_truth.udp_ect_blocked:
            server = shared_world.server_by_addr(addr)
            assert server.web_policy is not None
            assert server.web_policy.value == "negotiate"

    def test_bleachers_not_in_special_server_ases(self, shared_world):
        protected_asns = shared_world._special_asns()
        for router_id in shared_world.ground_truth.bleacher_routers:
            assert shared_world.topology.routers[router_id].asn not in protected_asns

    def test_bleachers_only_in_stub_ases(self, shared_world):
        stub_asns = {
            info.asn
            for info in shared_world.autonomous_systems
            if info.kind == "stub"
        }
        for router_id in shared_world.ground_truth.bleacher_routers:
            assert shared_world.topology.routers[router_id].asn in stub_asns


class TestBehaviour:
    def test_blocked_server_drops_ect_udp(self, fresh_world):
        addr = sorted(fresh_world.ground_truth.udp_ect_blocked)[0]
        host = fresh_world.vantage_hosts["ugla-wired"]
        results = []
        query_server(host, addr, ECN.NOT_ECT, results.append, attempts=3)
        fresh_world.network.scheduler.run()
        query_server(host, addr, ECN.ECT_0, results.append, attempts=3)
        fresh_world.network.scheduler.run()
        assert results[0].responded
        assert not results[1].responded

    def test_phoenix_servers_reject_not_ect_from_ec2_only(self, fresh_world):
        addr = sorted(fresh_world.ground_truth.phoenix)[0]
        ec2 = fresh_world.vantage_hosts["ec2-virginia"]
        home = fresh_world.vantage_hosts["perkins-home"]
        results = {}
        for key, host in (("ec2", ec2), ("home", home)):
            got = []
            query_server(host, addr, ECN.NOT_ECT, got.append, attempts=3)
            fresh_world.network.scheduler.run()
            results[key] = got[0].responded
        assert not results["ec2"]
        assert results["home"]

    def test_batch_switch_changes_availability(self, fresh_world):
        truth = fresh_world.ground_truth
        churned = sorted(truth.offline_batch2 - truth.offline_batch1)[0]
        server = fresh_world.server_by_addr(churned)
        fresh_world.enter_batch(1)
        assert server.ntp.online
        fresh_world.enter_batch(2)
        assert not server.ntp.online
        fresh_world.enter_batch(1)
        assert server.ntp.online

    def test_invalid_batch_rejected(self, fresh_world):
        with pytest.raises(ValueError):
            fresh_world.enter_batch(3)

    def test_dns_zones_cover_pool(self, shared_world):
        zones = shared_world.dns_server.zones
        assert "pool.ntp.org" in zones
        global_zone = zones["pool.ntp.org"]
        assert len(global_zone.addresses) == len(shared_world.servers)

    def test_mcquistin_gateway_preferentially_drops_ect_udp(self, shared_world):
        host = shared_world.vantage_hosts["mcquistin-home"]
        assert any(
            box.protocols == frozenset({PROTO_UDP}) and box.probability > 0
            for box in host.outbound_filters
        )

    def test_clean_vantages_have_no_outbound_filters(self, shared_world):
        assert shared_world.vantage_hosts["perkins-home"].outbound_filters == []
        assert shared_world.vantage_hosts["ec2-tokyo"].outbound_filters == []
