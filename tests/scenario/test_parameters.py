"""Tests for scenario parameters and scaling."""

import pytest

from repro.geo.regions import PAPER_REGION_COUNTS, Region
from repro.scenario.parameters import (
    ScenarioParams,
    default_params,
    scaled_params,
)


class TestDefaults:
    def test_full_scale_matches_paper(self):
        params = default_params()
        assert params.servers.total == 2500
        assert params.schedule.total_traces == 210
        assert params.servers.region_counts == PAPER_REGION_COUNTS

    def test_probe_policy_matches_section3(self):
        probes = default_params().probes
        assert probes.ntp_attempts == 5
        assert probes.ntp_timeout == 1.0

    def test_web_fraction_matches_paper(self):
        servers = default_params().servers
        assert servers.web_server_fraction == pytest.approx(1334 / 2500)
        assert servers.ecn_negotiate_fraction == pytest.approx(0.82)

    def test_scale_property(self):
        assert default_params().scale == 1.0


class TestScaling:
    def test_rates_preserved(self):
        full = default_params()
        small = scaled_params(0.1)
        assert small.servers.web_server_fraction == full.servers.web_server_fraction
        assert small.servers.ecn_negotiate_fraction == full.servers.ecn_negotiate_fraction
        assert small.probes == full.probes

    def test_population_scales(self):
        small = scaled_params(0.1)
        assert 200 <= small.servers.total <= 300
        assert small.middleboxes.udp_ect_blocked_servers <= 3

    def test_every_populated_region_keeps_a_server(self):
        small = scaled_params(0.02)
        for region, count in PAPER_REGION_COUNTS.items():
            if count:
                assert small.servers.region_counts[region] >= 1

    def test_region_counts_sum_equals_total(self):
        small = scaled_params(0.07)
        assert sum(small.servers.region_counts.values()) == small.servers.total

    def test_every_vantage_gets_a_trace(self):
        small = scaled_params(0.02)
        batch1 = 3 * small.schedule.batch1_traces_per_home_vantage
        assert small.schedule.total_traces - batch1 >= 13

    def test_scale_one_is_default(self):
        assert scaled_params(1.0) == default_params()

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            scaled_params(0.0)
        with pytest.raises(ValueError):
            scaled_params(1.5)

    def test_seed_passthrough(self):
        assert scaled_params(0.5, seed=99).seed == 99

    def test_params_frozen(self):
        params = default_params()
        with pytest.raises(Exception):
            params.seed = 1
