"""Tests for pool churn propagating into DNS, and failure injection."""

import pytest

from repro.core.discovery import PoolDiscovery
from repro.protocols.ntp.pool import POOL_DOMAIN


class TestChurnToDNS:
    def test_departed_members_leave_dns(self, fresh_world):
        world = fresh_world
        member = world.pool.members()[0]
        member.in_pool = False
        world.refresh_dns_zones()
        zone = world.dns_server.zone(POOL_DOMAIN)
        assert member.addr not in zone.addresses
        assert len(zone.addresses) == len(world.servers) - 1

    def test_pool_churn_shrinks_discovery(self, fresh_world):
        world = fresh_world
        departed = world.pool.apply_churn(world._rng, leave_probability=0.3)
        assert departed
        world.refresh_dns_zones()
        discovery = PoolDiscovery(
            world.vantage_hosts["ugla-wired"],
            world.dns_addr,
            world.pool.zone_names(),
        )
        report = discovery.run(until_stable_sweeps=2)
        departed_addrs = {m.addr for m in departed}
        assert not departed_addrs & set(report.addresses)
        assert len(report) == len(world.servers) - len(departed)

    def test_departed_hosts_still_answer_ntp(self, fresh_world):
        """Leaving the pool is a DNS event; the daemon keeps running —
        probes against previously discovered addresses still succeed
        (unless the host also went dark)."""
        from repro.core.probes import probe_udp
        from repro.netsim.ecn import ECN

        world = fresh_world
        online = [
            m
            for m in world.pool.members()
            if m.addr not in world.ground_truth.offline_batch1
        ]
        member = online[0]
        member.in_pool = False
        world.refresh_dns_zones()
        host = world.vantage_hosts["ugla-wired"]
        assert probe_udp(host, member.addr, ECN.NOT_ECT).responded


class TestFailureInjection:
    def test_discovery_with_dead_dns_finds_nothing(self, fresh_world):
        world = fresh_world
        # Unbind the DNS service: queries go unanswered.
        world.dns_server._socket.close()
        discovery = PoolDiscovery(
            world.vantage_hosts["ugla-wired"],
            world.dns_addr,
            [POOL_DOMAIN],
        )
        report = discovery.run(sweeps=2)
        assert len(report) == 0
        assert report.queries_answered == 0

    def test_measurement_against_empty_target_list(self, fresh_world):
        from repro.core.measurement import MeasurementApplication

        app = MeasurementApplication(fresh_world, targets=[])
        trace = app.run_trace("ugla-wired", trace_id=0, batch=1)
        assert trace.outcomes == {}
        assert trace.pct_ect_given_plain() is None
