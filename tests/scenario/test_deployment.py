"""Tests for deployment helpers."""

import random
from collections import Counter

import pytest

from repro.geo.regions import Region
from repro.netsim.errors import TopologyError
from repro.scenario.deployment import (
    AddressAllocator,
    REGION_BASE_OCTET,
    choose_country,
    interleave_regions,
    server_access_loss,
    web_server_policy_mix,
)
from repro.scenario.parameters import ServerParams
from repro.tcp.connection import ECNServerPolicy


class TestAddressAllocator:
    def test_regions_disjoint(self):
        allocator = AddressAllocator()
        europe = allocator.allocate(Region.EUROPE)
        na = allocator.allocate(Region.NORTH_AMERICA)
        assert not europe.contains(na.network)
        assert not na.contains(europe.network)

    def test_sequential_allocation_unique(self):
        allocator = AddressAllocator()
        prefixes = [allocator.allocate(Region.EUROPE) for _ in range(300)]
        assert len({p.network for p in prefixes}) == 300

    def test_first_octet_matches_region_pool(self):
        allocator = AddressAllocator()
        prefix = allocator.allocate(Region.ASIA)
        assert prefix.network >> 24 == REGION_BASE_OCTET[Region.ASIA]

    def test_spills_into_next_slash8(self):
        allocator = AddressAllocator()
        for _ in range(256):
            allocator.allocate(Region.AFRICA)
        spilled = allocator.allocate(Region.AFRICA)
        assert spilled.network >> 24 == REGION_BASE_OCTET[Region.AFRICA] + 1

    def test_exhaustion_raises(self):
        allocator = AddressAllocator()
        allocator._next_slot[Region.AFRICA] = 256 * 8
        with pytest.raises(TopologyError):
            allocator.allocate(Region.AFRICA)


class TestCountryChoice:
    def test_respects_region(self):
        rng = random.Random(1)
        for _ in range(50):
            assert choose_country(rng, Region.ASIA).region is Region.ASIA

    def test_weighting_visible(self):
        rng = random.Random(2)
        picks = Counter(choose_country(rng, Region.EUROPE).code for _ in range(2000))
        # Germany has the largest weight in the European pool.
        assert picks["de"] == max(picks.values())

    def test_unknown_region_raises(self):
        with pytest.raises(ValueError):
            choose_country(random.Random(1), Region.UNKNOWN)


class TestAccessLoss:
    def test_bounded_by_max(self):
        rng = random.Random(3)
        params = ServerParams()
        for _ in range(500):
            assert server_access_loss(rng, params).probability <= params.access_loss_max

    def test_mean_approximately_configured(self):
        rng = random.Random(4)
        params = ServerParams()
        rates = [server_access_loss(rng, params).probability for _ in range(5000)]
        assert sum(rates) / len(rates) == pytest.approx(
            params.access_loss_mean, rel=0.35
        )


class TestPolicyMix:
    def test_mix_fractions(self):
        rng = random.Random(5)
        params = ServerParams()
        policies = Counter(web_server_policy_mix(rng, params, 1000))
        assert policies[ECNServerPolicy.NEGOTIATE] == 820
        assert policies[ECNServerPolicy.REFLECT] == 5
        assert policies[ECNServerPolicy.DROP_ECN_SYN] == 10
        assert policies[ECNServerPolicy.IGNORE] == 165

    def test_total_preserved(self):
        rng = random.Random(6)
        for count in (0, 1, 7, 333):
            assert len(web_server_policy_mix(rng, ServerParams(), count)) == count

    def test_shuffled(self):
        rng = random.Random(7)
        policies = web_server_policy_mix(rng, ServerParams(), 500)
        # Not all NEGOTIATE entries first: the order is randomised.
        first_block = policies[:100]
        assert any(p is not ECNServerPolicy.NEGOTIATE for p in first_block)


class TestInterleave:
    def test_biggest_region_first(self):
        order = interleave_regions({Region.EUROPE: 100, Region.ASIA: 10, Region.AFRICA: 1})
        assert order[0] is Region.EUROPE

    def test_empty_regions_skipped(self):
        order = interleave_regions({Region.EUROPE: 5, Region.AFRICA: 0})
        assert Region.AFRICA not in order
