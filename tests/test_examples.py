"""Smoke tests: every example script runs and tells its story.

``full_study.py`` is exercised implicitly (its pipeline is the Study
façade's pipeline, covered elsewhere) and skipped here for runtime.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: float = 180.0) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "probing from" in out
        assert "firewalled server" in out
        assert "unreachable" in out  # the ECT-blocked case shows up

    def test_webrtc_preflight(self):
        out = run_example("webrtc_preflight.py")
        assert "ECN usable: enable ECT(0) marking" in out
        assert "fall back to not-ECT" in out
        assert "CE-marked" in out

    def test_ecn_path_debugging(self):
        out = run_example("ecn_path_debugging.py")
        assert "ECN field CLEARED" in out
        assert "mark first missing at hop" in out
        assert "not-ECT=True, ECT(0)=False" in out

    def test_rtp_adaptive_media(self):
        out = run_example("rtp_adaptive_media.py")
        assert "RED with ECN" in out
        assert "RED without ECN" in out
        # The ECN run reports CE marks, the drop-only run none.
        assert "CE marks observed : 0" in out
        lines = [l for l in out.splitlines() if "media lost" in l]
        assert len(lines) == 2

    def test_dns_variant_study(self):
        out = run_example("dns_variant_study.py")
        assert "ECT-blocked" in out
        assert "conclusions generalise" in out
        # Every probed host agreed between NTP and DNS verdicts.
        import re

        match = re.search(r"agree on (\d+)/(\d+)", out)
        assert match and match.group(1) == match.group(2)

    def test_full_study_with_args(self):
        result = subprocess.run(
            [sys.executable, str(EXAMPLES / "full_study.py"), "0.02", "9"],
            capture_output=True,
            text=True,
            timeout=240.0,
        )
        assert result.returncode == 0, result.stderr
        assert "Table 1" in result.stdout
        assert "Headline (paper vs reproduced)" in result.stdout
