"""Tests for the Study façade."""

import pytest

from repro.study import Study


@pytest.fixture(scope="module")
def small_study():
    return Study.run(scale=0.02, seed=5)


class TestRun:
    def test_runs_whole_pipeline(self, small_study):
        study = small_study
        assert len(study.traces) == study.world.params.schedule.total_traces
        assert len(study.campaign) == 13 * len(study.traces.server_addrs)

    def test_discovery_feeds_targets(self, small_study):
        assert set(small_study.traces.server_addrs) <= {
            s.addr for s in small_study.world.servers
        }

    def test_without_traceroutes(self):
        study = Study.run(scale=0.02, seed=5, traceroutes=False)
        assert len(study.campaign) == 0

    def test_without_discovery_uses_ground_truth_targets(self):
        study = Study.run(scale=0.02, seed=5, discover=False, traceroutes=False)
        assert set(study.traces.server_addrs) == {
            s.addr for s in study.world.servers
        }


class TestAnalyses:
    def test_analyses_cached(self, small_study):
        assert small_study.reachability is small_study.reachability
        assert small_study.paths is small_study.paths

    def test_headline_properties(self, small_study):
        assert small_study.reachability.avg_pct_ect_given_plain > 85
        assert 60 < small_study.tcp_ecn.pct_negotiated < 95
        assert small_study.paths.pct_hops_passing > 80
        assert len(small_study.correlation.rows) == 13
        assert small_study.geography.total == len(small_study.traces.server_addrs)
        assert small_study.regional

    def test_intervals_and_validation(self, small_study):
        intervals = small_study.intervals()
        assert intervals.pct_ect_given_plain.low <= intervals.pct_ect_given_plain.high
        qualities = small_study.validate()
        assert {q.name for q in qualities} == {
            "blocked-servers",
            "not-ect-droppers",
            "strip-ases",
        }

    def test_report_renders(self, small_study):
        text = small_study.report()
        assert "Table 1" in text and "Table 2" in text


class TestPersistence:
    def test_save_load_roundtrip(self, small_study, tmp_path):
        out = small_study.save(tmp_path / "study")
        assert (out / "report.txt").exists()
        assert (out / "figures" / "figure2.csv").exists()
        loaded = Study.load(out)
        assert len(loaded.traces) == len(small_study.traces)
        assert (
            loaded.reachability.avg_pct_ect_given_plain
            == small_study.reachability.avg_pct_ect_given_plain
        )
        # The rebuilt world is the same deterministic world.
        assert loaded.world.ground_truth.udp_ect_blocked == (
            small_study.world.ground_truth.udp_ect_blocked
        )
