"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for argv in (
            ["study", "--scale", "0.02"],
            ["report", "--study", "x"],
            ["discover"],
            ["traceroute"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_missing_subcommand_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestDiscoverCommand:
    def test_runs_and_prints(self, capsys):
        assert main(["discover", "--scale", "0.02", "--seed", "3", "--limit", "5"]) == 0
        out = capsys.readouterr().out
        assert "servers discovered" in out
        assert "..." in out  # more than the 5-line limit exists


class TestTracerouteCommand:
    def test_prints_hops(self, capsys):
        assert (
            main(
                [
                    "traceroute",
                    "--scale",
                    "0.02",
                    "--seed",
                    "3",
                    "--vantage",
                    "ec2-tokyo",
                    "--server",
                    "0",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "traceroute to ntp-" in out
        assert "ECT(0)" in out

    def test_unknown_vantage_fails(self, capsys):
        assert main(["traceroute", "--scale", "0.02", "--vantage", "nowhere"]) == 2

    def test_server_out_of_range_fails(self, capsys):
        assert (
            main(["traceroute", "--scale", "0.02", "--server", "99999"]) == 2
        )


class TestStudyAndReport:
    def test_study_writes_dataset_and_report(self, tmp_path, capsys):
        out_dir = tmp_path / "study"
        code = main(
            [
                "study",
                "--scale",
                "0.02",
                "--seed",
                "3",
                "--spans",
                "--out",
                str(out_dir),
            ]
        )
        assert code == 0
        for name in (
            "manifest.json",
            "traces.json",
            "traceroutes.json",
            "summary.json",
            "traces.csv",
            "report.txt",
            "spans.json",
            "trace.json",
        ):
            assert (out_dir / name).exists(), name
        manifest = json.loads((out_dir / "manifest.json").read_text())
        assert manifest == {"scale": 0.02, "seed": 3}
        spans = json.loads((out_dir / "spans.json").read_text())
        assert spans["format"] == "ecn-udp-spans/1"
        stdout = capsys.readouterr().out
        assert "Table 1" in stdout
        assert "Figure 6" in stdout

        # Re-analysing the saved study reproduces the report.
        capsys.readouterr()
        assert main(["report", "--study", str(out_dir)]) == 0
        reread = capsys.readouterr().out
        assert "Table 2" in reread

        # And --dashboard renders the run dashboard next to the data.
        assert main(["report", "--study", str(out_dir), "--dashboard"]) == 0
        dashboard = (out_dir / "dashboard.html").read_text()
        assert dashboard.startswith("<!DOCTYPE html>")
        assert "Phase timing" in dashboard

    def test_profile_requires_out(self, capsys):
        assert main(["study", "--scale", "0.02", "--profile"]) == 2
        assert "--profile needs --out" in capsys.readouterr().err
