"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for argv in (
            ["study", "--scale", "0.02"],
            ["report", "--study", "x"],
            ["discover"],
            ["traceroute"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_missing_subcommand_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestDiscoverCommand:
    def test_runs_and_prints(self, capsys):
        assert main(["discover", "--scale", "0.02", "--seed", "3", "--limit", "5"]) == 0
        out = capsys.readouterr().out
        assert "servers discovered" in out
        assert "..." in out  # more than the 5-line limit exists


class TestTracerouteCommand:
    def test_prints_hops(self, capsys):
        assert (
            main(
                [
                    "traceroute",
                    "--scale",
                    "0.02",
                    "--seed",
                    "3",
                    "--vantage",
                    "ec2-tokyo",
                    "--server",
                    "0",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "traceroute to ntp-" in out
        assert "ECT(0)" in out

    def test_unknown_vantage_fails(self, capsys):
        assert main(["traceroute", "--scale", "0.02", "--vantage", "nowhere"]) == 2

    def test_server_out_of_range_fails(self, capsys):
        assert (
            main(["traceroute", "--scale", "0.02", "--server", "99999"]) == 2
        )


class TestStudyAndReport:
    def test_study_writes_dataset_and_report(self, tmp_path, capsys):
        out_dir = tmp_path / "study"
        code = main(
            [
                "study",
                "--scale",
                "0.02",
                "--seed",
                "3",
                "--spans",
                "--out",
                str(out_dir),
            ]
        )
        assert code == 0
        for name in (
            "manifest.json",
            "traces.json",
            "traceroutes.json",
            "summary.json",
            "traces.csv",
            "report.txt",
            "spans.json",
            "trace.json",
        ):
            assert (out_dir / name).exists(), name
        manifest = json.loads((out_dir / "manifest.json").read_text())
        assert manifest == {"scale": 0.02, "seed": 3}
        spans = json.loads((out_dir / "spans.json").read_text())
        assert spans["format"] == "ecn-udp-spans/1"
        stdout = capsys.readouterr().out
        assert "Table 1" in stdout
        assert "Figure 6" in stdout

        # Re-analysing the saved study reproduces the report.
        capsys.readouterr()
        assert main(["report", "--study", str(out_dir)]) == 0
        reread = capsys.readouterr().out
        assert "Table 2" in reread

        # And --dashboard renders the run dashboard next to the data.
        assert main(["report", "--study", str(out_dir), "--dashboard"]) == 0
        dashboard = (out_dir / "dashboard.html").read_text()
        assert dashboard.startswith("<!DOCTYPE html>")
        assert "Phase timing" in dashboard

    def test_profile_requires_out(self, capsys):
        assert main(["study", "--scale", "0.02", "--profile"]) == 2
        assert "--profile needs --out" in capsys.readouterr().err


class TestExitCodes:
    """Validation failures exit 2 with a one-line stderr message."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["study", "--scale", "5"],
            ["study", "--scale", "0"],
            ["study", "--scale", "0.1", "--workers", "-1"],
            ["discover", "--scale", "-1"],
            ["validate", "--scale", "99"],
            ["report", "--study", "/nonexistent-study"],
            ["metrics", "--study", "/nonexistent-study"],
            ["serve", "--port", "-1"],
            ["serve", "--workers", "-1"],
            ["serve", "--queue-depth", "0"],
            ["serve", "--tenant-quota", "0"],
            ["serve", "--max-concurrent", "0"],
        ],
    )
    def test_invalid_input_exits_2(self, argv, capsys):
        assert main(argv) == 2
        assert capsys.readouterr().err.strip()

    def test_report_missing_run_id_exits_2(self, tmp_path, capsys):
        assert main(["report", "--run-id", "ghost", "--dir", str(tmp_path)]) == 2
        assert "ghost" in capsys.readouterr().err

    def test_report_corrupt_study_exits_2(self, tmp_path, capsys):
        study = tmp_path / "broken"
        study.mkdir()
        (study / "manifest.json").write_text("{nope")
        assert main(["report", "--study", str(study)]) == 2
        assert "cannot load study" in capsys.readouterr().err


class TestStudiesCommand:
    def test_lists_and_migrates(self, tmp_path, capsys):
        study = tmp_path / "legacy"
        study.mkdir()
        (study / "manifest.json").write_text(json.dumps({"scale": 0.01, "seed": 5}))
        assert main(["studies", "--dir", str(tmp_path)]) == 0
        captured = capsys.readouterr()
        assert "legacy" in captured.out
        assert "indexed 1 pre-index archive" in captured.err

        assert main(["studies", "--dir", str(tmp_path), "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["studies"]["legacy"]["seed"] == 5

    def test_empty_tree(self, tmp_path, capsys):
        assert main(["studies", "--dir", str(tmp_path)]) == 0
        assert "no studies indexed" in capsys.readouterr().out

    def test_corrupt_index_exits_2(self, tmp_path, capsys):
        (tmp_path / "index.json").write_text("{nope")
        assert main(["studies", "--dir", str(tmp_path)]) == 2
        assert "unreadable" in capsys.readouterr().err


class TestServeParser:
    def test_serve_and_studies_subcommands_exist(self):
        parser = build_parser()
        serve = parser.parse_args(["serve", "--port", "0", "--workers", "1"])
        assert callable(serve.func)
        assert serve.queue_depth == 16 and serve.tenant_quota == 4
        studies = parser.parse_args(["studies", "--dir", "x", "--json"])
        assert callable(studies.func)

    def test_report_study_and_run_id_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["report", "--study", "x", "--run-id", "y"]
            )
        with pytest.raises(SystemExit):
            build_parser().parse_args(["report"])
