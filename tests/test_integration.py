"""End-to-end integration: discovery → study → every analysis.

These tests exercise the complete pipeline the way ``ecnudp study``
does, and check the cross-cutting invariants that only hold when all
the pieces cooperate.
"""

import pytest

from repro.core.analysis import (
    DifferentialAnalysis,
    analyze_campaign,
    analyze_correlation,
    analyze_geography,
    analyze_reachability,
    analyze_tcp_ecn,
)
from repro.core.discovery import PoolDiscovery
from repro.core.measurement import MeasurementApplication
from repro.scenario.internet import SyntheticInternet
from repro.scenario.parameters import scaled_params

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def pipeline():
    """A small but complete discovery→measurement→analysis pipeline."""
    world = SyntheticInternet(scaled_params(0.02, seed=77))
    discovery = PoolDiscovery(
        world.vantage_hosts["ugla-wired"], world.dns_addr, world.pool.zone_names()
    )
    report = discovery.run()
    app = MeasurementApplication(world, targets=report.addresses)
    traces = app.run_study()
    campaign = app.run_traceroutes()
    return world, report, traces, campaign


class TestPipeline:
    def test_discovery_found_whole_pool(self, pipeline):
        world, report, _, _ = pipeline
        assert len(report) == len(world.servers)

    def test_study_has_planned_trace_count(self, pipeline):
        world, _, traces, _ = pipeline
        assert len(traces) == world.params.schedule.total_traces

    def test_reachability_consistent_with_ground_truth(self, pipeline):
        world, _, traces, _ = pipeline
        truth = world.ground_truth
        blocked = truth.udp_ect_blocked | truth.any_ect_blocked
        for trace in traces:
            for addr in blocked:
                outcome = trace.outcome_for(addr)
                # Persistently blocked: never ECT-reachable.
                assert not outcome.udp_ect

    def test_offline_servers_never_respond(self, pipeline):
        world, _, traces, _ = pipeline
        always_offline = world.ground_truth.offline_batch1
        for trace in traces:
            for addr in always_offline:
                outcome = trace.outcome_for(addr)
                assert not outcome.udp_plain
                assert not outcome.udp_ect

    def test_negotiation_only_with_negotiating_policy(self, pipeline):
        from repro.tcp.connection import ECNServerPolicy

        world, _, traces, _ = pipeline
        negotiators = {
            s.addr
            for s in world.servers
            if s.web_policy is ECNServerPolicy.NEGOTIATE
        }
        for trace in traces:
            negotiated = {
                addr for addr, o in trace.outcomes.items() if o.ecn_negotiated
            }
            assert negotiated <= negotiators

    def test_all_analyses_run_cleanly(self, pipeline):
        world, _, traces, campaign = pipeline
        geo = analyze_geography(traces.server_addrs, world.geo)
        reach = analyze_reachability(traces)
        tcp = analyze_tcp_ecn(traces)
        paths = analyze_campaign(campaign, world.noisy_as_map)
        corr = analyze_correlation(traces)
        diff_a = DifferentialAnalysis(traces, "plain-only")
        diff_b = DifferentialAnalysis(traces, "ect-only")
        assert geo.total == len(traces.server_addrs)
        assert reach.avg_pct_ect_given_plain > 80
        assert tcp.pct_negotiated > 60
        assert paths.hops_measured > 0
        assert len(corr.rows) == 13
        assert len(diff_a.fractions_for_vantage("ugla-wired")) == geo.total
        assert len(diff_b.fractions_for_vantage("ugla-wired")) == geo.total

    def test_conclusion_holds(self, pipeline):
        """The paper's bottom line: marking UDP packets ECT(0) does not,
        in general, harm reachability — the reachability deficit is
        small and concentrated in a handful of servers."""
        world, _, traces, _ = pipeline
        reach = analyze_reachability(traces)
        deficit = 100.0 - reach.avg_pct_ect_given_plain
        assert deficit < 7.5
        analysis = DifferentialAnalysis(traces, "plain-only")
        persistent = analysis.servers_above_everywhere(0.5)
        assert len(persistent) <= max(
            4, 2 * world.params.middleboxes.udp_ect_blocked_servers
        )

    def test_network_counters_accumulate(self, pipeline):
        world, _, _, _ = pipeline
        counters = world.network.counters
        assert counters.sent > counters.delivered > 0
        assert counters.ttl_expired > 0  # traceroutes ran
        assert counters.icmp_generated > 0
