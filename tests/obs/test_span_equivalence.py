"""The span determinism contract: sharded ≡ sequential, bit for bit.

A span tree's canonical projection (:func:`repro.obs.canonical_spans`,
which strips only wall-clock attribution) must be identical between
``workers=0`` and ``workers=N`` for the same
``(scale, seed, chaos_seed)`` — same ids, same hierarchy, same
simulated times, same fault events.  This holds because span ids
derive from ``(shard_id, sequence counter)`` and simulated times from
hermetic epoch clocks, neither of which knows how many processes did
the work.
"""

import json

import pytest

from repro.obs import ROOT_SPAN_ID, canonical_spans, span_children
from repro.study import Study

pytestmark = pytest.mark.slow

SCALE = 0.04
SEED = 11


@pytest.fixture(scope="module")
def sequential():
    return Study.run(scale=SCALE, seed=SEED, record_spans="probe")


@pytest.fixture(scope="module")
def sharded():
    return Study.run(scale=SCALE, seed=SEED, workers=2, record_spans="probe")


class TestCanonicalEquivalence:
    def test_span_trees_bit_identical_across_sharding(self, sequential, sharded):
        seq = canonical_spans(sequential.spans)
        par = canonical_spans(sharded.spans)
        assert seq == par
        # Byte-level too: identical JSON serialisation.
        assert json.dumps(seq, sort_keys=True) == json.dumps(par, sort_keys=True)

    def test_wall_clock_rides_outside_the_contract(self, sequential):
        assert all("wall_ms" in span for span in sequential.spans)
        assert all(
            "wall_ms" not in span for span in canonical_spans(sequential.spans)
        )

    def test_probe_detail_captures_phases(self, sequential):
        kinds = {span["kind"] for span in sequential.spans}
        assert {"study", "shard", "trace", "sweep", "probe", "phase"} <= kinds

    def test_hierarchy_is_a_single_rooted_tree(self, sequential):
        ids = {span["id"] for span in sequential.spans}
        assert len(ids) == len(sequential.spans), "duplicate span ids"
        index = span_children(sequential.spans)
        roots = index[None]
        assert [s["id"] for s in roots] == [ROOT_SPAN_ID]
        for span in sequential.spans:
            if span["parent"] is not None:
                assert span["parent"] in ids


class TestChaoticEquivalence:
    def test_chaotic_span_trees_identical_and_carry_fault_events(self):
        seq = Study.run(
            scale=0.02, seed=SEED, record_spans=True, faults="default", chaos_seed=3
        )
        par = Study.run(
            scale=0.02,
            seed=SEED,
            workers=2,
            record_spans=True,
            faults="default",
            chaos_seed=3,
        )
        assert canonical_spans(seq.spans) == canonical_spans(par.spans)
        fault_events = [
            event
            for span in seq.spans
            for event in span.get("events", ())
            if event["name"] == "fault"
        ]
        assert fault_events, "chaotic run recorded no fault events in spans"


class TestInertness:
    def test_spans_off_by_default(self, sequential):
        study = Study.run(scale=0.02, seed=SEED)
        assert study.spans is None
        # And recording did not perturb the measurement itself.
        small = Study.run(scale=0.02, seed=SEED, record_spans="probe")
        assert small.traces.to_dict() == study.traces.to_dict()
        assert small.campaign.to_dict() == study.campaign.to_dict()


class TestArchival:
    def test_save_writes_spans_and_chrome_trace(self, sequential, tmp_path):
        out = sequential.save(tmp_path / "study")
        spans_doc = json.loads((out / "spans.json").read_text())
        assert spans_doc["format"] == "ecn-udp-spans/1"
        assert spans_doc["spans"] == sequential.spans
        trace_doc = json.loads((out / "trace.json").read_text())
        assert {e["ph"] for e in trace_doc["traceEvents"]} <= {"X", "M", "i"}
        loaded = Study.load(out)
        assert loaded.spans == sequential.spans
