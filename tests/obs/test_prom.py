"""Prometheus text exposition: renderer and in-repo validator.

The renderer and validator live in one module so they cannot drift;
these tests hold them to that — everything the renderer emits must
pass the validator, and the validator must reject the classic
format-0.0.4 mistakes (bad sample syntax, TYPE after samples,
non-monotonic cumulative buckets, ``+Inf`` disagreeing with
``_count``).
"""

import pytest

from repro.obs import (
    PROM_CONTENT_TYPE,
    ExpositionError,
    MetricsRegistry,
    render_prometheus,
    validate_exposition,
)
from repro.obs.prom import metric_name


@pytest.fixture
def snapshot():
    registry = MetricsRegistry()
    registry.incr("engine.dispatched", 3)
    registry.incr("router.forwarded")
    registry.gauge_max("engine.queue_peak", 7)
    for value in (0.05, 0.2, 0.2, 3.0):
        registry.observe("probe.rtt_seconds", value, (0.1, 0.5, 1.0))
    return registry.snapshot()


class TestRenderer:
    def test_render_passes_own_validator(self, snapshot):
        text = render_prometheus(
            snapshot, extra_gauges={"serve.queued": 2, "serve.running": 1}
        )
        types = validate_exposition(text)
        assert types[metric_name("engine.dispatched")] == "counter"
        assert types[metric_name("engine.queue_peak")] == "gauge"
        assert types[metric_name("serve.queued")] == "gauge"
        assert types[metric_name("probe.rtt_seconds")] == "histogram"
        assert text.endswith("\n")

    def test_histogram_triplet_cumulative(self, snapshot):
        text = render_prometheus(snapshot)
        name = metric_name("probe.rtt_seconds")
        assert f'{name}_bucket{{le="0.1"}} 1' in text
        assert f'{name}_bucket{{le="0.5"}} 3' in text
        assert f'{name}_bucket{{le="1"}} 3' in text
        assert f'{name}_bucket{{le="+Inf"}} 4' in text
        assert f"{name}_count 4" in text
        assert f"{name}_sum 3.45" in text

    def test_rendering_is_deterministic(self, snapshot):
        assert render_prometheus(snapshot) == render_prometheus(snapshot)

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus({}) == ""

    def test_dotted_names_sanitised(self):
        assert metric_name("probe.rtt_seconds") == "ecnudp_probe_rtt_seconds"
        assert validate_exposition(
            render_prometheus({"counters": {"weird name!": 1}})
        )

    def test_content_type_pins_format_version(self):
        assert "version=0.0.4" in PROM_CONTENT_TYPE


class TestValidatorRejects:
    def test_bad_sample_line(self):
        with pytest.raises(ExpositionError, match="not a valid sample"):
            validate_exposition("this is { not a sample\n")

    def test_malformed_label(self):
        with pytest.raises(ExpositionError, match="malformed label"):
            validate_exposition('m{le=0.5} 1\n')

    def test_unparseable_value(self):
        with pytest.raises(ExpositionError, match="unparseable sample value"):
            validate_exposition("m abc\n")

    def test_unknown_type(self):
        with pytest.raises(ExpositionError, match="unknown metric type"):
            validate_exposition("# TYPE m rainbow\nm 1\n")

    def test_duplicate_type(self):
        with pytest.raises(ExpositionError, match="duplicate TYPE"):
            validate_exposition("# TYPE m counter\n# TYPE m counter\nm 1\n")

    def test_type_after_samples(self):
        with pytest.raises(ExpositionError, match="after its samples"):
            validate_exposition("m 1\n# TYPE m counter\n")

    def test_bucket_without_le(self):
        text = "# TYPE h histogram\nh_bucket 1\nh_count 1\n"
        with pytest.raises(ExpositionError, match="without le label"):
            validate_exposition(text)

    def test_non_monotonic_buckets(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.5"} 5\n'
            'h_bucket{le="1"} 3\n'
            'h_bucket{le="+Inf"} 5\n'
            "h_count 5\n"
        )
        with pytest.raises(ExpositionError, match="buckets decrease"):
            validate_exposition(text)

    def test_missing_inf_bucket(self):
        text = "# TYPE h histogram\n" 'h_bucket{le="0.5"} 5\n' "h_count 5\n"
        with pytest.raises(ExpositionError, match=r"missing \+Inf"):
            validate_exposition(text)

    def test_inf_disagrees_with_count(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 4\n'
            "h_count 5\n"
        )
        with pytest.raises(ExpositionError, match="!= _count"):
            validate_exposition(text)

    def test_free_comments_and_blank_lines_are_legal(self):
        assert validate_exposition("\n# just a comment\nm 1\n") == {}
