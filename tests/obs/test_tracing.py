"""Tests for packet-path tracing: filters, recording, flow grouping."""

import pytest

from repro.netsim.ecn import ECN
from repro.netsim.host import Host
from repro.netsim.ipv4 import IPv4Packet, PROTO_TCP, PROTO_UDP, parse_addr
from repro.netsim.link import link_pair
from repro.netsim.middlebox import ECTBleacher
from repro.netsim.network import FAST, EVENT, Network
from repro.netsim.router import Router
from repro.netsim.topology import Topology
from repro.obs import FilterError, PathTracer, group_flows, parse_filter


def packet(src="10.0.0.1", dst="10.0.0.2", protocol=PROTO_UDP, ecn=ECN.NOT_ECT, ident=7):
    return IPv4Packet(
        src=parse_addr(src),
        dst=parse_addr(dst),
        protocol=protocol,
        ident=ident,
        payload=b"",
    ).with_ecn(ecn)


class TestParseFilter:
    def test_protocol_term(self):
        match = parse_filter("udp")
        assert match(packet(protocol=PROTO_UDP))
        assert not match(packet(protocol=PROTO_TCP))

    def test_conjunction(self):
        match = parse_filter("udp and dst 10.0.0.2")
        assert match(packet(dst="10.0.0.2"))
        assert not match(packet(dst="10.0.0.3"))
        assert not match(packet(protocol=PROTO_TCP))

    def test_disjunction_binds_looser_than_and(self):
        match = parse_filter("tcp or udp and ect0")
        # parsed as tcp OR (udp AND ect0)
        assert match(packet(protocol=PROTO_TCP, ecn=ECN.NOT_ECT))
        assert match(packet(protocol=PROTO_UDP, ecn=ECN.ECT_0))
        assert not match(packet(protocol=PROTO_UDP, ecn=ECN.NOT_ECT))

    def test_ecn_terms(self):
        assert parse_filter("ect")(packet(ecn=ECN.ECT_0))
        assert parse_filter("ect")(packet(ecn=ECN.CE))
        assert not parse_filter("ect")(packet(ecn=ECN.NOT_ECT))
        assert parse_filter("not-ect")(packet(ecn=ECN.NOT_ECT))
        assert parse_filter("ce")(packet(ecn=ECN.CE))

    def test_src_term_accepts_int(self):
        match = parse_filter("src 167772161")  # 10.0.0.1
        assert match(packet(src="10.0.0.1"))

    @pytest.mark.parametrize(
        "expression", ["", "and udp", "udp and", "frobnicate", "dst", "dst 10.0.0"]
    )
    def test_rejects_malformed(self, expression):
        with pytest.raises(FilterError):
            parse_filter(expression)


class TestRecording:
    def test_limit_counts_dropped(self):
        tracer = PathTracer(limit=2)
        for _ in range(5):
            tracer.record(packet(), "r0", "forward", ECN.NOT_ECT, ECN.NOT_ECT)
        assert len(tracer) == 2
        assert tracer.dropped == 3
        assert "3 more events" in tracer.dump()

    def test_events_for_filters_by_flow(self):
        tracer = PathTracer()
        tracer.record(packet(ident=1), "r0", "forward", ECN.NOT_ECT, ECN.NOT_ECT)
        tracer.record(packet(ident=2), "r0", "forward", ECN.NOT_ECT, ECN.NOT_ECT)
        assert len(tracer.events_for(ident=1)) == 1

    def test_group_flows_preserves_order(self):
        tracer = PathTracer()
        for hop in ("r0", "r1", "r2"):
            tracer.record(packet(ident=9), hop, "forward", ECN.ECT_0, ECN.ECT_0)
        flows = group_flows(tracer.events)
        (events,) = flows.values()
        assert [event.hop for event in events] == ["r0", "r1", "r2"]

    def test_describe_renders_ecn_transition(self):
        tracer = PathTracer()
        tracer.record(packet(), "r1", "middlebox:bleach", ECN.ECT_0, ECN.NOT_ECT)
        line = tracer.events[0].describe()
        assert "ECT(0) -> not-ECT" in line or "->" in line
        assert "@r1" in line


def build_chain(mode=FAST, hops=4, bleach_at=2):
    """A straight 4-router chain with an ECT bleacher at ``bleach_at``."""
    topo = Topology()
    for index in range(hops):
        topo.add_router(
            Router(
                f"r{index}",
                asn=100 + index,
                interface_addr=parse_addr(f"10.0.{index}.1"),
            )
        )
        if index:
            forward, backward = link_pair(f"r{index - 1}", f"r{index}", delay=0.01)
            topo.add_link_pair(forward, backward)
    topo.routers[f"r{bleach_at}"].add_middlebox(ECTBleacher())
    client = topo.add_host(Host("client", parse_addr("192.0.2.1"), "r0"))
    server = topo.add_host(Host("server", parse_addr("198.51.100.1"), f"r{hops - 1}"))
    net = Network(topo, seed=3, mode=mode)
    return net, client, server


@pytest.mark.parametrize("mode", [FAST, EVENT])
class TestInNetwork:
    def test_bleacher_hop_observed_at_right_position(self, mode):
        net, client, server = build_chain(mode=mode, bleach_at=2)
        tracer = PathTracer(match="udp and ect0 or udp and not-ect")
        net.set_observability(tracer=tracer)
        server.udp_bind(123, lambda d, p, t: None)
        client.udp_bind(None).send(server.addr, 123, b"x", ecn=ECN.ECT_0)
        net.scheduler.run()

        events = tracer.events_for(src=client.addr, dst=server.addr)
        actions = [(event.hop, event.action) for event in events]
        # tx at the client, forwards through r0 and r1 with the mark
        # intact, the bleach exactly at r2, then onwards to delivery.
        assert actions[0] == ("client", "tx")
        assert ("r2", "middlebox:ect-bleacher") in actions
        bleach_index = actions.index(("r2", "middlebox:ect-bleacher"))
        assert actions[:bleach_index] == [
            ("client", "tx"),
            ("r0", "forward"),
            ("r1", "forward"),
        ]
        bleach = events[bleach_index]
        assert ECN(bleach.ecn_before) is ECN.ECT_0
        assert ECN(bleach.ecn_after) is ECN.NOT_ECT
        # Every event after the bleach sees the stripped mark.
        assert all(
            ECN(event.ecn_before) is ECN.NOT_ECT for event in events[bleach_index + 1 :]
        )
        assert actions[-1] == ("server", "rx")

    def test_filter_excludes_other_traffic(self, mode):
        net, client, server = build_chain(mode=mode)
        tracer = PathTracer(match="tcp")
        net.set_observability(tracer=tracer)
        server.udp_bind(123, lambda d, p, t: None)
        client.udp_bind(None).send(server.addr, 123, b"x", ecn=ECN.ECT_0)
        net.scheduler.run()
        assert len(tracer) == 0
