"""Tests for run telemetry: shard records, merging, rendering."""

from repro.obs import (
    RunTelemetry,
    ShardRecord,
    empty_snapshot,
    render_metrics_report,
)


def record(shard_id, elapsed=1.0, attempts=1, kind="traces", units=5):
    return ShardRecord(
        shard_id=shard_id,
        kind=kind,
        label=f"shard-{shard_id}",
        attempts=attempts,
        elapsed=elapsed,
        units=units,
    )


class TestRunTelemetry:
    def test_total_retries(self):
        telemetry = RunTelemetry()
        telemetry.record_shard(record(0, attempts=1))
        telemetry.record_shard(record(1, attempts=3))
        assert telemetry.total_retries == 2

    def test_slowest_shards_stable_on_ties(self):
        telemetry = RunTelemetry()
        for shard_id, elapsed in ((2, 1.0), (0, 1.0), (1, 5.0)):
            telemetry.record_shard(record(shard_id, elapsed=elapsed))
        slowest = telemetry.slowest_shards(count=3)
        assert [r.shard_id for r in slowest] == [1, 0, 2]

    def test_to_dict_orders_shards_by_id(self):
        telemetry = RunTelemetry(workers=4, wall_seconds=2.5)
        for shard_id in (3, 1, 2):
            telemetry.record_shard(record(shard_id))
        document = telemetry.to_dict()
        assert [entry["shard_id"] for entry in document["shards"]] == [1, 2, 3]
        assert document["workers"] == 4
        assert document["metrics"] == empty_snapshot()

    def test_merge_metrics(self):
        telemetry = RunTelemetry()
        telemetry.merge_metrics(
            [
                {"counters": {"a": 1}, "gauges": {}},
                {"counters": {"a": 2}, "gauges": {"g": 7}},
            ]
        )
        assert telemetry.metrics["counters"] == {"a": 3}
        assert telemetry.metrics["gauges"] == {"g": 7}

    def test_shard_record_round_trip(self):
        original = record(4, elapsed=0.25, attempts=2)
        assert ShardRecord(**original.to_dict()) == original

    def test_slowest_shards_ties_keep_full_ordering_stable(self):
        telemetry = RunTelemetry()
        for shard_id in (7, 3, 5, 1):
            telemetry.record_shard(record(shard_id, elapsed=2.0))
        assert [r.shard_id for r in telemetry.slowest_shards(count=4)] == [1, 3, 5, 7]

    def test_export_rounds_wall_clock_to_milliseconds(self):
        """Sub-ms timer noise must not churn exported documents."""
        telemetry = RunTelemetry(workers=2, wall_seconds=1.23456789)
        telemetry.record_shard(record(0, elapsed=0.00049999))
        document = telemetry.to_dict()
        assert document["wall_seconds"] == 1.235
        assert document["shards"][0]["elapsed"] == 0.0

    def test_rounding_is_export_only(self):
        """In-memory values keep full precision; exporting twice is
        stable (rounding is idempotent, never accumulated)."""
        telemetry = RunTelemetry(wall_seconds=0.1234567)
        telemetry.record_shard(record(0, elapsed=0.7654321))
        first = telemetry.to_dict()
        second = telemetry.to_dict()
        assert first == second
        assert telemetry.wall_seconds == 0.1234567
        assert telemetry.shards[0].elapsed == 0.7654321


class TestRendering:
    def test_report_lists_counters_and_gauges(self):
        snapshot = {"counters": {"router.forwarded": 10}, "gauges": {"peak": 3.0}}
        text = render_metrics_report(snapshot)
        assert "router.forwarded" in text
        assert "10" in text
        assert "peak" in text and "(gauge)" in text

    def test_report_handles_empty_snapshot(self):
        assert "no metrics recorded" in render_metrics_report(empty_snapshot())

    def test_report_includes_telemetry_section(self):
        telemetry = RunTelemetry(workers=2, wall_seconds=1.0)
        telemetry.record_shard(record(0))
        telemetry.runner = {"shards_dispatched": 1}
        text = render_metrics_report(empty_snapshot(), telemetry)
        assert "Run telemetry" in text
        assert "workers=2" in text
        assert "shards_dispatched" in text

    def test_summary_lines_chaos_branch(self):
        telemetry = RunTelemetry(workers=2, wall_seconds=1.0)
        telemetry.chaos = {
            "profile": "default",
            "chaos_seed": 9,
            "events": 4,
            "by_kind": {"link_flap": 3, "bleach_on": 1},
        }
        text = "\n".join(telemetry.summary_lines())
        assert "chaos profile=default" in text
        assert "seed=9" in text
        assert "events=4" in text
        # by_kind renders sorted by kind name.
        assert "bleach_on=1 link_flap=3" in text

    def test_summary_lines_without_chaos_omits_the_section(self):
        telemetry = RunTelemetry(workers=2, wall_seconds=1.0)
        assert not any("chaos" in line for line in telemetry.summary_lines())
