"""The observability determinism contracts, end to end.

Two promises from DESIGN.md's observability section:

1. Metrics are *deterministic*: a ``workers=N`` run's merged counters
   are bit-identical to the sequential run's, for the same
   ``(scale, seed)`` — sharding changes only who counts, never what.
2. Observation is *inert*: collecting metrics must not perturb results,
   and with observation off the archival output is byte-identical to a
   build that never heard of ``repro.obs``.
"""

import json

import pytest

from repro.study import Study

pytestmark = pytest.mark.slow

SCALE = 0.04
SEED = 11

ARCHIVE_FILES = ("summary.json", "traces.json", "traceroutes.json", "traces.csv")


@pytest.fixture(scope="module")
def sequential():
    return Study.run(scale=SCALE, seed=SEED, collect_metrics=True)


@pytest.fixture(scope="module")
def sharded():
    return Study.run(scale=SCALE, seed=SEED, workers=4, collect_metrics=True)


class TestCounterEquivalence:
    def test_counters_bit_identical_across_sharding(self, sequential, sharded):
        assert sequential.metrics["counters"] == sharded.metrics["counters"]

    def test_gauges_identical_across_sharding(self, sequential, sharded):
        assert sequential.metrics["gauges"] == sharded.metrics["gauges"]

    def test_serialised_snapshots_identical(self, sequential, sharded):
        assert json.dumps(sequential.metrics) == json.dumps(sharded.metrics)

    def test_counters_nonempty_and_sane(self, sequential):
        counters = sequential.metrics["counters"]
        assert counters["app.traces_run"] == len(list(sequential.traces))
        assert counters["router.forwarded"] > 0
        assert counters["engine.dispatched"] > 0
        # Dispatch + cancellation account for every scheduled event.
        assert (
            counters["engine.scheduled"]
            == counters["engine.dispatched"] + counters["engine.cancelled"]
        )

    def test_telemetry_shard_accounting(self, sharded):
        telemetry = sharded.telemetry
        assert telemetry.workers == 4
        assert len(telemetry.shards) == telemetry.runner["runner.shards_dispatched"]
        assert telemetry.total_retries == 0
        assert telemetry.metrics == sharded.metrics


class TestObservationIsInert:
    def test_results_unchanged_by_observation(self, sequential):
        plain = Study.run(scale=SCALE, seed=SEED)
        assert plain.metrics is None
        assert plain.report() == sequential.report()

    def test_archival_output_byte_identical(self, sequential, tmp_path):
        plain = Study.run(scale=SCALE, seed=SEED)
        plain_dir = plain.save(tmp_path / "plain")
        observed_dir = sequential.save(tmp_path / "observed")
        for name in ARCHIVE_FILES:
            assert (observed_dir / name).read_bytes() == (
                plain_dir / name
            ).read_bytes(), name
        # Observation adds artefacts; switched off, none appear.
        assert (observed_dir / "metrics.json").exists()
        assert (observed_dir / "telemetry.json").exists()
        assert not (plain_dir / "metrics.json").exists()
        assert not (plain_dir / "telemetry.json").exists()

    def test_saved_metrics_round_trip(self, sequential, tmp_path):
        directory = sequential.save(tmp_path / "study")
        assert json.loads((directory / "metrics.json").read_text()) == sequential.metrics
        document = json.loads((directory / "telemetry.json").read_text())
        assert document["metrics"] == sequential.metrics


class TestTracingGuards:
    def test_trace_filter_requires_sequential(self):
        with pytest.raises(ValueError, match="sequential-only"):
            Study.run(scale=SCALE, seed=SEED, workers=2, trace_filter="udp")
