"""The observability determinism contracts, end to end.

Two promises from DESIGN.md's observability section:

1. Metrics are *deterministic*: a ``workers=N`` run's merged counters
   are bit-identical to the sequential run's, for the same
   ``(scale, seed)`` — sharding changes only who counts, never what.
2. Observation is *inert*: collecting metrics must not perturb results,
   and with observation off the archival output is byte-identical to a
   build that never heard of ``repro.obs``.
"""

import json

import pytest

from repro.obs import canonical_events, render_events_jsonl
from repro.study import Study

pytestmark = pytest.mark.slow

SCALE = 0.04
SEED = 11

ARCHIVE_FILES = ("summary.json", "traces.json", "traceroutes.json", "traces.csv")


@pytest.fixture(scope="module")
def sequential():
    return Study.run(
        scale=SCALE, seed=SEED, collect_metrics=True, collect_events=True
    )


@pytest.fixture(scope="module")
def sharded():
    return Study.run(
        scale=SCALE, seed=SEED, workers=4, collect_metrics=True, collect_events=True
    )


class TestCounterEquivalence:
    def test_counters_bit_identical_across_sharding(self, sequential, sharded):
        assert sequential.metrics["counters"] == sharded.metrics["counters"]

    def test_gauges_identical_across_sharding(self, sequential, sharded):
        assert sequential.metrics["gauges"] == sharded.metrics["gauges"]

    def test_serialised_snapshots_identical(self, sequential, sharded):
        assert json.dumps(sequential.metrics) == json.dumps(sharded.metrics)

    def test_counters_nonempty_and_sane(self, sequential):
        counters = sequential.metrics["counters"]
        assert counters["app.traces_run"] == len(list(sequential.traces))
        assert counters["router.forwarded"] > 0
        assert counters["engine.dispatched"] > 0
        # Dispatch + cancellation account for every scheduled event.
        assert (
            counters["engine.scheduled"]
            == counters["engine.dispatched"] + counters["engine.cancelled"]
        )

    def test_telemetry_shard_accounting(self, sharded):
        telemetry = sharded.telemetry
        assert telemetry.workers == 4
        assert len(telemetry.shards) == telemetry.runner["runner.shards_dispatched"]
        assert telemetry.total_retries == 0
        assert telemetry.metrics == sharded.metrics


class TestHistogramEquivalence:
    def test_histograms_present(self, sequential):
        histograms = sequential.metrics["histograms"]
        assert "app.rtt.udp_plain" in histograms
        assert histograms["app.rtt.udp_plain"]["count"] > 0

    def test_histograms_bit_identical_across_sharding(self, sequential, sharded):
        assert sequential.metrics["histograms"] == sharded.metrics["histograms"]

    def test_histogram_serialisation_identical(self, sequential, sharded):
        assert json.dumps(sequential.metrics["histograms"]) == json.dumps(
            sharded.metrics["histograms"]
        )


class TestEventEquivalence:
    def test_event_streams_bit_identical_across_sharding(self, sequential, sharded):
        assert render_events_jsonl(
            canonical_events(sequential.events)
        ) == render_events_jsonl(canonical_events(sharded.events))

    def test_events_nonempty_and_attributed(self, sequential):
        events = canonical_events(sequential.events)
        assert events
        kinds = {event["kind"] for event in events}
        assert "epoch-start" in kinds
        assert all("shard" in event and "seq" in event for event in events)
        assert all("wall" not in event for event in events)

    def test_saved_events_jsonl_byte_identical(self, sequential, sharded, tmp_path):
        seq_dir = sequential.save(tmp_path / "seq")
        shard_dir = sharded.save(tmp_path / "shard")
        assert (seq_dir / "events.jsonl").read_bytes() == (
            shard_dir / "events.jsonl"
        ).read_bytes()


class TestChaosEquivalence:
    """The same contracts hold with the fault injector running."""

    @pytest.fixture(scope="class")
    def chaos_sequential(self):
        return Study.run(
            scale=SCALE, seed=SEED, faults="default", chaos_seed=5,
            collect_metrics=True, collect_events=True,
        )

    @pytest.fixture(scope="class")
    def chaos_sharded(self):
        return Study.run(
            scale=SCALE, seed=SEED, faults="default", chaos_seed=5, workers=4,
            collect_metrics=True, collect_events=True,
        )

    def test_fault_events_emitted(self, chaos_sequential):
        kinds = [event["kind"] for event in chaos_sequential.events]
        assert "fault" in kinds

    def test_chaos_event_streams_identical(self, chaos_sequential, chaos_sharded):
        assert canonical_events(chaos_sequential.events) == canonical_events(
            chaos_sharded.events
        )

    def test_chaos_histograms_identical(self, chaos_sequential, chaos_sharded):
        assert (
            chaos_sequential.metrics["histograms"]
            == chaos_sharded.metrics["histograms"]
        )


class TestObservationIsInert:
    def test_results_unchanged_by_observation(self, sequential):
        plain = Study.run(scale=SCALE, seed=SEED)
        assert plain.metrics is None
        assert plain.report() == sequential.report()

    def test_archival_output_byte_identical(self, sequential, tmp_path):
        plain = Study.run(scale=SCALE, seed=SEED)
        plain_dir = plain.save(tmp_path / "plain")
        observed_dir = sequential.save(tmp_path / "observed")
        for name in ARCHIVE_FILES:
            assert (observed_dir / name).read_bytes() == (
                plain_dir / name
            ).read_bytes(), name
        # Observation adds artefacts; switched off, none appear.
        assert (observed_dir / "metrics.json").exists()
        assert (observed_dir / "telemetry.json").exists()
        assert not (plain_dir / "metrics.json").exists()
        assert not (plain_dir / "telemetry.json").exists()

    def test_saved_metrics_round_trip(self, sequential, tmp_path):
        directory = sequential.save(tmp_path / "study")
        assert json.loads((directory / "metrics.json").read_text()) == sequential.metrics
        document = json.loads((directory / "telemetry.json").read_text())
        assert document["metrics"] == sequential.metrics


class TestTracingGuards:
    def test_trace_filter_requires_sequential(self):
        with pytest.raises(ValueError, match="sequential-only"):
            Study.run(scale=SCALE, seed=SEED, workers=2, trace_filter="udp")
