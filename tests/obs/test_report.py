"""Unit tests for the run dashboard (artefact loading + renderers)."""

import json

import pytest

from repro.obs import (
    RunArtifacts,
    dashboard_sections,
    load_run_artifacts,
    render_dashboard_html,
    render_dashboard_markdown,
    write_dashboard,
)


@pytest.fixture
def study_dir(tmp_path):
    """A synthesized study directory with every observability artefact."""
    (tmp_path / "manifest.json").write_text(
        json.dumps(
            {
                "scale": 0.02,
                "seed": 11,
                "chaos": {"profile": "default", "chaos_seed": 3, "events": 2},
            }
        )
    )
    (tmp_path / "summary.json").write_text(
        json.dumps(
            {
                "section_4_1": {
                    "avg_udp_plain_reachable": 47.5,
                    "avg_pct_ect_given_plain": 97.9,
                    "avg_pct_plain_given_ect": 99.4,
                },
                "section_4_2": {
                    "hops_measured": 900,
                    "hops_passing": 850,
                    "pct_hops_passing": 94.4,
                    "strip_events": 12,
                    "boundary_fraction": 0.75,
                },
                "section_4_3": {
                    "avg_tcp_reachable": 40.0,
                    "avg_ecn_negotiated": 22.0,
                    "pct_negotiated": 55.0,
                },
            }
        )
    )
    (tmp_path / "telemetry.json").write_text(
        json.dumps(
            {
                "workers": 2,
                "wall_seconds": 3.25,
                "total_retries": 1,
                "shards": [
                    {"shard_id": 0, "kind": "traces", "label": "v0 (batch 1)",
                     "attempts": 1, "elapsed": 0.8, "units": 5},
                    {"shard_id": 1, "kind": "traces", "label": "v1 (batch 1)",
                     "attempts": 2, "elapsed": 1.4, "units": 5},
                ],
            }
        )
    )
    (tmp_path / "metrics.json").write_text(
        json.dumps({"counters": {"router.forwarded": 10}, "gauges": {}})
    )
    (tmp_path / "spans.json").write_text(
        json.dumps(
            {
                "format": "ecn-udp-spans/1",
                "spans": [
                    {"id": "root", "parent": None, "kind": "study",
                     "name": "study", "sim_start": 0.0, "sim_end": 10.0,
                     "wall_ms": 100.0},
                    {"id": "s0.0", "parent": "root", "kind": "shard",
                     "name": "shard-0", "sim_start": 0.0, "sim_end": 10.0,
                     "wall_ms": 100.0, "attrs": {"shard_id": 0}},
                    {"id": "s0.1", "parent": "s0.0", "kind": "trace",
                     "name": "trace-0", "sim_start": 0.0, "sim_end": 10.0,
                     "wall_ms": 100.0,
                     "events": [
                         {"name": "fault", "sim_time": 1.0,
                          "attrs": {"epoch": 0, "kind": "link_flap",
                                    "target": "r1->r2", "magnitude": 0.9}},
                     ]},
                ],
            }
        )
    )
    (tmp_path / "flight-shard-0.json").write_text(
        json.dumps({"format": "ecn-udp-flight/1", "label": "shard-0",
                    "reason": "test", "events": []})
    )
    return tmp_path


class TestLoading:
    def test_loads_every_artifact(self, study_dir):
        artifacts = load_run_artifacts(study_dir)
        assert artifacts.manifest["scale"] == 0.02
        assert artifacts.summary is not None
        assert artifacts.metrics is not None
        assert artifacts.telemetry["workers"] == 2
        assert len(artifacts.spans) == 3
        assert [d["file"] for d in artifacts.flights] == ["flight-shard-0.json"]

    def test_empty_directory_degrades_gracefully(self, tmp_path):
        artifacts = load_run_artifacts(tmp_path)
        assert artifacts.manifest == {}
        assert artifacts.spans is None
        sections = dashboard_sections(artifacts)
        titles = [title for title, _, _, _ in sections]
        assert "Phase timing" in titles
        # Missing artefacts render as notes, never crashes.
        assert render_dashboard_markdown(artifacts)
        assert render_dashboard_html(artifacts)


class TestSections:
    def test_all_sections_present(self, study_dir):
        titles = [
            title
            for title, _, _, _ in dashboard_sections(load_run_artifacts(study_dir))
        ]
        assert titles == [
            "Run",
            "Phase timing",
            "Slowest shards",
            "Chaos timeline",
            "Histograms",
            "ECN mark survival",
        ]

    def test_chaos_timeline_rows_from_span_events(self, study_dir):
        sections = dict(
            (title, rows)
            for title, _, rows, _ in dashboard_sections(load_run_artifacts(study_dir))
        )
        assert sections["Chaos timeline"] == [
            ["1.0", "0", "link_flap", "r1->r2", "0.90"]
        ]

    def test_slowest_shards_prefer_telemetry_and_sort(self, study_dir):
        sections = {
            title: rows
            for title, _, rows, _ in dashboard_sections(load_run_artifacts(study_dir))
        }
        flame = sections["Slowest shards"]
        assert [row[0] for row in flame] == ["1", "0"]
        assert flame[0][2] == "x2"
        # Proportional bars: the slowest shard gets the longest bar.
        assert len(flame[0][4]) >= len(flame[1][4])


class TestRenderers:
    def test_markdown_contains_tables_and_headline_numbers(self, study_dir):
        text = render_dashboard_markdown(load_run_artifacts(study_dir))
        assert "# ECN/UDP study run dashboard" in text
        assert "| phase" in text
        assert "97.90" in text  # ECT-given-plain survival
        assert "link_flap" in text

    def test_html_is_self_contained_and_escaped(self, study_dir):
        html_text = render_dashboard_html(load_run_artifacts(study_dir))
        assert html_text.startswith("<!DOCTYPE html>")
        assert "<style>" in html_text
        assert "src=" not in html_text and "href=" not in html_text
        assert "r1-&gt;r2" in html_text  # fault target is escaped

    def test_write_dashboard_picks_format_by_suffix(self, study_dir, tmp_path):
        html_path = write_dashboard(study_dir, tmp_path / "d.html")
        md_path = write_dashboard(study_dir, tmp_path / "d.md")
        assert html_path.read_text().startswith("<!DOCTYPE html>")
        assert md_path.read_text().startswith("# ECN/UDP")
