"""Tests for the metrics registry and deterministic snapshot merging."""

import json

import pytest

from repro.obs import (
    NULL_METRICS,
    MetricsRegistry,
    NullRegistry,
    empty_snapshot,
    merge_snapshots,
    proto_name,
)


class TestRegistry:
    def test_counters_start_at_zero(self):
        registry = MetricsRegistry()
        assert registry.counter("router.forwarded") == 0

    def test_incr_accumulates(self):
        registry = MetricsRegistry()
        registry.incr("router.forwarded")
        registry.incr("router.forwarded", 4)
        assert registry.counter("router.forwarded") == 5

    def test_gauge_is_high_water_mark(self):
        registry = MetricsRegistry()
        registry.gauge_max("engine.heap_peak", 10)
        registry.gauge_max("engine.heap_peak", 3)
        registry.gauge_max("engine.heap_peak", 17)
        assert registry.gauge("engine.heap_peak") == 17

    def test_gauge_default(self):
        registry = MetricsRegistry()
        assert registry.gauge("missing") is None
        assert registry.gauge("missing", 0.0) == 0.0

    def test_snapshot_is_key_sorted(self):
        registry = MetricsRegistry()
        registry.incr("zebra")
        registry.incr("aardvark")
        registry.gauge_max("mid", 1)
        snap = registry.snapshot()
        assert list(snap["counters"]) == ["aardvark", "zebra"]
        assert snap["gauges"] == {"mid": 1}

    def test_snapshot_is_a_copy(self):
        registry = MetricsRegistry()
        registry.incr("a")
        snap = registry.snapshot()
        registry.incr("a")
        assert snap["counters"]["a"] == 1

    def test_clear(self):
        registry = MetricsRegistry()
        registry.incr("a")
        registry.gauge_max("g", 2)
        registry.clear()
        assert registry.snapshot() == empty_snapshot()

    def test_truthiness_gate(self):
        # The whole call-site contract: real registry truthy, disabled
        # forms falsey, so `if metrics:` is the only predicate paid.
        assert MetricsRegistry()
        assert not NullRegistry()
        assert not NULL_METRICS
        assert not None

    def test_null_registry_is_inert(self):
        NULL_METRICS.incr("a", 5)
        NULL_METRICS.gauge_max("g", 9)
        assert NULL_METRICS.counter("a") == 0
        assert NULL_METRICS.gauge("g") is None
        assert NULL_METRICS.snapshot() == empty_snapshot()


class TestMerge:
    def _snapshots(self):
        return [
            {"counters": {"a": 1, "b": 2}, "gauges": {"peak": 5}},
            {"counters": {"b": 3, "c": 10}, "gauges": {"peak": 2, "depth": 1}},
            {"counters": {"a": 4}, "gauges": {}},
        ]

    def test_counters_sum_gauges_max(self):
        merged = merge_snapshots(self._snapshots())
        assert merged["counters"] == {"a": 5, "b": 5, "c": 10}
        assert merged["gauges"] == {"depth": 1, "peak": 5}

    def test_merge_order_independent_to_the_byte(self):
        snaps = self._snapshots()
        forward = json.dumps(merge_snapshots(snaps))
        backward = json.dumps(merge_snapshots(list(reversed(snaps))))
        rotated = json.dumps(merge_snapshots(snaps[1:] + snaps[:1]))
        assert forward == backward == rotated

    def test_merge_of_nothing(self):
        assert merge_snapshots([]) == empty_snapshot()

    def test_merge_keys_sorted(self):
        merged = merge_snapshots(self._snapshots())
        assert list(merged["counters"]) == sorted(merged["counters"])
        assert list(merged["gauges"]) == sorted(merged["gauges"])


@pytest.mark.parametrize(
    "protocol,expected", [(1, "icmp"), (6, "tcp"), (17, "udp"), (41, "41")]
)
def test_proto_name(protocol, expected):
    assert proto_name(protocol) == expected
