"""Unit tests for the structured event log.

The contracts under test mirror the module docstring: leveled
filtering, deterministic per-kind rate limiting, the bounded ring with
a stable since-cursor, shard attribution through a context map, and
the canonical (wall-stripped, ``(shard, seq)``-ordered) form the
equivalence suite and ``events.jsonl`` rely on.
"""

import pytest

from repro.obs import (
    NULL_EVENTS,
    EventLog,
    NullEventLog,
    assemble_study_events,
    canonical_events,
    parse_events_jsonl,
    render_events_jsonl,
)
from repro.obs.events import LEVELS, level_rank


class TestEmission:
    def test_event_envelope_and_context(self):
        log = EventLog(run_id="r1", tenant="alice")
        event = log.emit("serve-submit", "info", priority=2)
        assert event["kind"] == "serve-submit"
        assert event["level"] == "info"
        assert event["seq"] == 0
        assert event["run_id"] == "r1"
        assert event["tenant"] == "alice"
        assert event["priority"] == 2
        assert "wall" in event

    def test_envelope_wins_over_payload_fields(self):
        log = EventLog(run_id="r1")
        event = log.emit("x", "info", seq=999, kind="forged", run_id="other")
        assert event["seq"] == 0
        assert event["kind"] == "x"
        assert event["run_id"] == "r1"

    def test_bind_folds_context_into_future_events(self):
        log = EventLog()
        log.bind(epoch=3, nothing=None)
        event = log.emit("x")
        assert event["epoch"] == 3
        assert "nothing" not in event

    def test_min_level_filters(self):
        log = EventLog(min_level="warning")
        assert log.emit("quiet", "debug") is None
        assert log.emit("quiet", "info") is None
        assert log.emit("loud", "warning") is not None
        assert log.emit("loud", "alert") is not None
        assert [e["kind"] for e in log.export()] == ["loud", "loud"]

    def test_unknown_level_is_loud(self):
        log = EventLog()
        with pytest.raises(ValueError, match="unknown event level"):
            log.emit("x", "catastrophic")
        with pytest.raises(ValueError, match="unknown event level"):
            EventLog(min_level="whisper")

    def test_level_rank_total_order(self):
        ranks = [level_rank(level) for level in LEVELS]
        assert ranks == sorted(ranks)
        assert len(set(ranks)) == len(LEVELS)

    def test_stamp_wall_off_omits_wall(self):
        log = EventLog(stamp_wall=False)
        assert "wall" not in log.emit("x")


class TestRateLimit:
    def test_per_kind_cap_counts_drops(self):
        log = EventLog(kind_limit=3)
        for _ in range(5):
            log.emit("chatty")
        log.emit("other")
        assert len([e for e in log.export() if e["kind"] == "chatty"]) == 3
        assert log.dropped() == {"chatty": 2}
        # Other kinds are unaffected by one kind hitting its cap.
        assert [e["kind"] for e in log.export()][-1] == "other"

    def test_seq_not_consumed_by_dropped_events(self):
        log = EventLog(kind_limit=1)
        log.emit("a")
        log.emit("a")  # dropped
        event = log.emit("b")
        assert event["seq"] == 1


class TestRingAndCursor:
    def test_ring_bounds_buffer_but_seq_keeps_rising(self):
        log = EventLog(capacity=4)
        for i in range(10):
            log.emit("tick", "info", i=i)
        window = log.export()
        assert len(window) == 4
        assert [e["i"] for e in window] == [6, 7, 8, 9]
        assert log.next_seq == 10

    def test_since_cursor_resumes_and_clamps(self):
        log = EventLog(capacity=4)
        for i in range(10):
            log.emit("tick", "info", i=i)
        # A cursor that fell off the ring returns whatever survives.
        assert [e["i"] for e in log.since(0)] == [6, 7, 8, 9]
        assert [e["i"] for e in log.since(8)] == [8, 9]
        assert log.since(10) == []
        assert [e["i"] for e in log.since(6, limit=2)] == [6, 7]

    def test_tail(self):
        log = EventLog()
        for i in range(5):
            log.emit("tick", "info", i=i)
        assert [e["i"] for e in log.tail(2)] == [3, 4]
        assert log.tail(0) == []

    def test_clear_resets_everything(self):
        log = EventLog(kind_limit=1)
        log.emit("a")
        log.emit("a")
        log.clear()
        assert log.export() == []
        assert log.next_seq == 0
        assert log.dropped() == {}
        assert log.emit("a") is not None


class TestShardAttribution:
    CONTEXT_MAP = {("trace", "vp-0", 0): 0, ("trace", "vp-1", 0): 1}

    def test_context_map_mints_per_shard_seqs(self):
        log = EventLog(stamp_wall=False, context_map=self.CONTEXT_MAP)
        log.enter_context("trace", "vp-0", 0)
        log.emit("a")
        log.enter_context("trace", "vp-1", 0)
        log.emit("b")
        log.enter_context("trace", "vp-0", 0)
        log.emit("c")
        seqs = [(e["shard"], e["seq"]) for e in log.export()]
        assert seqs == [(0, 0), (1, 0), (0, 1)]

    def test_unknown_context_is_loud(self):
        log = EventLog(context_map=self.CONTEXT_MAP)
        with pytest.raises(ValueError, match="no shard owns"):
            log.enter_context("trace", "vp-9", 0)

    def test_rate_limit_is_per_shard(self):
        log = EventLog(kind_limit=1, context_map=self.CONTEXT_MAP)
        log.enter_context("trace", "vp-0", 0)
        assert log.emit("x") is not None
        assert log.emit("x") is None
        log.enter_context("trace", "vp-1", 0)
        assert log.emit("x") is not None

    def test_enter_context_noop_without_map(self):
        log = EventLog()
        log.enter_context("trace", "vp-0", 0)
        assert "shard" not in log.emit("x")


class TestCanonicalForm:
    def test_merge_order_is_shard_then_seq(self):
        by_shard = {
            1: [{"seq": 0, "kind": "b"}],
            0: [{"seq": 0, "kind": "a"}, {"seq": 1, "kind": "c"}],
        }
        merged = canonical_events(assemble_study_events(by_shard))
        assert [(e["shard"], e["seq"], e["kind"]) for e in merged] == [
            (0, 0, "a"),
            (0, 1, "c"),
            (1, 0, "b"),
        ]

    def test_canonical_strips_wall_and_sorts_keys(self):
        log = EventLog()
        log.emit("x", "info", zeta=1, alpha=2)
        [entry] = canonical_events(log.export())
        assert "wall" not in entry
        assert list(entry) == sorted(entry)

    def test_jsonl_round_trip(self):
        events = [{"seq": 0, "kind": "a", "n": 1}, {"seq": 1, "kind": "b"}]
        text = render_events_jsonl(events)
        assert text.count("\n") == 2
        assert parse_events_jsonl(text) == events

    def test_parse_is_loud_on_garbage(self):
        with pytest.raises(ValueError, match="garbled event at line 2"):
            parse_events_jsonl('{"seq": 0}\nnot json\n')
        with pytest.raises(ValueError, match="not an object"):
            parse_events_jsonl("[1, 2]\n")


class TestNullEventLog:
    def test_falsey_and_inert(self):
        assert not NULL_EVENTS
        assert isinstance(NULL_EVENTS, NullEventLog)
        assert NULL_EVENTS.emit("x", "alert", a=1) is None
        NULL_EVENTS.bind(run_id="r")
        NULL_EVENTS.enter_context("trace", "vp-0", 0)
        assert NULL_EVENTS.export() == []
        assert NULL_EVENTS.since(0) == []
        assert NULL_EVENTS.tail(5) == []
        assert NULL_EVENTS.next_seq == 0
        assert NULL_EVENTS.dropped() == {}

    def test_real_log_is_truthy_even_when_empty(self):
        assert EventLog()
