"""Unit tests for the hierarchical span recorder and its exports."""

import json

import pytest

from repro.obs import (
    DETAIL_EPOCH,
    DETAIL_PROBE,
    NULL_SPANS,
    ROOT_SPAN_ID,
    SpanRecorder,
    assemble_study_spans,
    canonical_spans,
    chrome_trace_events,
    export_chrome_trace,
    span_children,
    span_id,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


def recorder(clock=None, detail=DETAIL_EPOCH, context_map=None, flight=None):
    return SpanRecorder(
        clock=clock or FakeClock(),
        detail=detail,
        context_map=context_map,
        flight=flight,
    )


class TestSpanIds:
    def test_ids_derive_from_shard_and_sequence(self):
        assert span_id(3, 7) == "s3.7"

    def test_sequence_counters_are_per_shard(self):
        rec = recorder(context_map={("traces", "a", 0): 1, ("traces", "b", 0): 2})
        rec.enter_context("traces", "a")
        with rec.span("trace", "t0"):
            pass
        rec.enter_context("traces", "b")
        with rec.span("trace", "t1"):
            pass
        rec.enter_context("traces", "a")
        with rec.span("trace", "t2"):
            pass
        ids = [s["id"] for s in rec.export()]
        # Each shard span is seq 0 of its shard; epochs continue from 1.
        assert ids == [ROOT_SPAN_ID, "s1.0", "s1.1", "s1.2", "s2.0", "s2.1"]

    def test_unknown_context_falls_back_to_shard_zero(self):
        rec = recorder(context_map={})
        rec.enter_context("traces", "nowhere", batch=9)
        with rec.span("trace", "t"):
            pass
        assert [s["id"] for s in rec.export()] == [ROOT_SPAN_ID, "s0.0", "s0.1"]

    def test_context_switch_with_open_span_is_an_error(self):
        rec = recorder()
        with rec.span("trace", "t"):
            with pytest.raises(RuntimeError, match="open spans"):
                rec.enter_context("traces", "a")


class TestRecording:
    def test_nesting_and_sim_times(self):
        clock = FakeClock(10.0)
        rec = recorder(clock=clock)
        with rec.span("trace", "outer"):
            clock.now = 12.0
            with rec.span("probe", "inner"):
                clock.now = 15.0
            clock.now = 20.0
        spans = rec.export()
        outer = next(s for s in spans if s["name"] == "outer")
        inner = next(s for s in spans if s["name"] == "inner")
        assert (outer["sim_start"], outer["sim_end"]) == (10.0, 20.0)
        assert (inner["sim_start"], inner["sim_end"]) == (12.0, 15.0)
        assert inner["parent"] == outer["id"]

    def test_events_attach_to_innermost_span(self):
        rec = recorder()
        with rec.span("trace", "t"):
            rec.event("fault", kind="link_flap")
        span = next(s for s in rec.export() if s["name"] == "t")
        assert span["events"][0]["name"] == "fault"
        assert span["events"][0]["attrs"] == {"kind": "link_flap"}

    def test_orphan_events_flush_into_next_span(self):
        """Fault installation runs between epochs; its event must land
        in the epoch it impairs, not vanish."""
        rec = recorder()
        rec.event("fault", kind="bleach_on")
        with rec.span("trace", "next-epoch"):
            pass
        span = next(s for s in rec.export() if s["name"] == "next-epoch")
        assert [e["name"] for e in span["events"]] == ["fault"]

    def test_annotate_merges_into_open_span(self):
        rec = recorder()
        with rec.span("probe", "p"):
            rec.annotate(udp_plain=True)
        span = next(s for s in rec.export() if s["name"] == "p")
        assert span["attrs"]["udp_plain"] is True

    def test_detail_levels_are_validated(self):
        with pytest.raises(ValueError, match="unknown span detail"):
            SpanRecorder(detail="nanosecond")
        assert recorder(detail=DETAIL_PROBE).detail == DETAIL_PROBE

    def test_null_recorder_is_falsey_and_inert(self):
        assert not NULL_SPANS
        NULL_SPANS.event("x")
        NULL_SPANS.annotate(a=1)
        with NULL_SPANS.span("trace", "t") as span:
            assert span is None


class TestAssembly:
    def test_shard_interval_synthesized_from_children(self):
        clock = FakeClock(5.0)
        rec = recorder(clock=clock)
        with rec.span("trace", "a"):
            clock.now = 9.0
        clock.now = 30.0
        with rec.span("trace", "b"):
            clock.now = 42.0
        shard = rec.export()[1]
        assert shard["kind"] == "shard"
        assert (shard["sim_start"], shard["sim_end"]) == (5.0, 42.0)

    def test_root_spans_the_whole_study(self):
        rec = recorder(clock=FakeClock(7.0))
        with rec.span("trace", "t"):
            pass
        root = rec.export()[0]
        assert root["id"] == ROOT_SPAN_ID
        assert root["parent"] is None
        assert root["kind"] == "study"

    def test_assemble_orders_shards_by_id(self):
        exports = {
            2: [{"id": "s2.0", "parent": ROOT_SPAN_ID, "kind": "shard",
                 "name": "shard-2", "sim_start": 2.0, "sim_end": 3.0,
                 "wall_ms": 1.0}],
            0: [{"id": "s0.0", "parent": ROOT_SPAN_ID, "kind": "shard",
                 "name": "shard-0", "sim_start": 0.0, "sim_end": 1.0,
                 "wall_ms": 1.0}],
        }
        spans = assemble_study_spans(exports)
        assert [s["id"] for s in spans] == [ROOT_SPAN_ID, "s0.0", "s2.0"]

    def test_assemble_empty_exports(self):
        spans = assemble_study_spans({})
        assert len(spans) == 1 and spans[0]["id"] == ROOT_SPAN_ID

    def test_canonical_strips_wall_clock_only(self):
        rec = recorder()
        with rec.span("trace", "t", vantage="v"):
            pass
        canonical = canonical_spans(rec.export())
        assert all("wall_ms" not in s for s in canonical)
        assert canonical[2]["attrs"] == {"vantage": "v"}

    def test_span_children_indexes_by_parent(self):
        rec = recorder()
        with rec.span("trace", "t"):
            with rec.span("probe", "p"):
                pass
        index = span_children(rec.export())
        assert [s["name"] for s in index[None]] == ["study"]
        assert [s["name"] for s in index["s0.1"]] == ["p"]


class TestChromeTrace:
    def trace_spans(self):
        clock = FakeClock(1.0)
        rec = recorder(clock=clock)
        with rec.span("trace", "t0", vantage="v"):
            rec.event("fault", kind="link_flap")
            clock.now = 2.5
        return rec.export()

    def test_events_follow_the_trace_event_schema(self):
        events = chrome_trace_events(self.trace_spans())
        for event in events:
            assert event["ph"] in ("X", "M", "i")
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            if event["ph"] == "X":
                assert event["dur"] >= 0.0
                assert "ts" in event and "name" in event
            if event["ph"] == "i":
                assert event["s"] in ("g", "p", "t")

    def test_shards_map_to_processes(self):
        events = chrome_trace_events(self.trace_spans())
        names = {
            e["args"]["name"] for e in events if e["name"] == "process_name"
        }
        assert names == {"study", "shard 0"}

    def test_sim_seconds_export_as_microseconds(self):
        events = chrome_trace_events(self.trace_spans())
        t0 = next(e for e in events if e.get("name") == "t0" and e["ph"] == "X")
        assert t0["ts"] == pytest.approx(1.0e6)
        assert t0["dur"] == pytest.approx(1.5e6)

    def test_export_writes_a_loadable_document(self, tmp_path):
        path = tmp_path / "trace.json"
        export_chrome_trace(self.trace_spans(), path)
        document = json.loads(path.read_text())
        assert document["displayTimeUnit"] == "ms"
        assert isinstance(document["traceEvents"], list)
        assert document["traceEvents"]
