"""Unit tests for the crash flight recorder (bounded ring + dumps)."""

import pytest

from repro.obs import DEFAULT_CAPACITY, FlightRecorder, load_flight_dump


class TestRing:
    def test_bounded_capacity_drops_oldest(self):
        flight = FlightRecorder(capacity=3)
        for i in range(5):
            flight.record("tick", i=i)
        assert len(flight) == 3
        assert [e["i"] for e in flight.events()] == [2, 3, 4]
        assert flight.recorded == 5

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            FlightRecorder(capacity=0)

    def test_default_capacity(self):
        assert FlightRecorder().capacity == DEFAULT_CAPACITY

    def test_truthy_even_when_empty(self):
        assert FlightRecorder()

    def test_payload_kind_key_cannot_collide(self):
        """Regression: span events carry a ``kind`` attribute; passing
        it through **payload used to raise TypeError, crashing the very
        code path that exists to record crashes."""
        flight = FlightRecorder(capacity=4)
        flight.record("span-event", kind="link_flap", target="r1")
        event = flight.events()[0]
        assert event["kind"] == "span-event"
        assert event["target"] == "r1"

    def test_clear(self):
        flight = FlightRecorder()
        flight.record("x")
        flight.clear()
        assert len(flight) == 0


class TestDump:
    def test_dump_and_load_round_trip(self, tmp_path):
        flight = FlightRecorder(capacity=8, label="shard-3")
        flight.record("shard-start", shard=3)
        flight.record("shard-crash", shard=3, error="boom")
        path = flight.dump(tmp_path, reason="test crash", attempt=1)
        assert path.name == "flight-shard-3.json"
        document = load_flight_dump(path)
        assert document["format"] == "ecn-udp-flight/1"
        assert document["reason"] == "test crash"
        assert document["context"] == {"attempt": 1}
        assert [e["kind"] for e in document["events"]] == [
            "shard-start",
            "shard-crash",
        ]

    def test_dump_creates_the_directory(self, tmp_path):
        flight = FlightRecorder(label="worker")
        path = flight.dump(tmp_path / "deep" / "obs", reason="r")
        assert path.exists()

    def test_dump_never_raises(self, tmp_path):
        """A failing dump must not mask the failure being recorded."""
        blocker = tmp_path / "file"
        blocker.write_text("not a directory")
        flight = FlightRecorder()
        flight.dump(blocker / "sub", reason="r")  # OSError swallowed

    def test_load_rejects_foreign_documents(self, tmp_path):
        path = tmp_path / "flight-x.json"
        path.write_text('{"format": "something-else/9"}')
        with pytest.raises(ValueError, match="not a flight dump"):
            load_flight_dump(path)
