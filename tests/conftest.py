"""Shared fixtures.

Heavy artefacts (the synthetic Internet, a completed study) are built
once per session and shared read-only across analysis tests; protocol
and netsim tests build their own tiny topologies via ``two_host_net``.
"""

from __future__ import annotations

import pytest

from repro.core.measurement import MeasurementApplication
from repro.netsim.host import Host
from repro.netsim.ipv4 import parse_addr
from repro.netsim.link import link_pair
from repro.netsim.network import EVENT, FAST, Network
from repro.netsim.router import Router
from repro.netsim.topology import Topology
from repro.scenario.internet import SyntheticInternet
from repro.scenario.parameters import scaled_params

#: Scale/seed for the shared world: small enough for fast tests, large
#: enough that every middlebox class and vantage has population.
SHARED_SCALE = 0.04
SHARED_SEED = 11


def build_two_host_net(
    mode: str = FAST,
    seed: int = 1,
    hops: int = 2,
    link_delay: float = 0.01,
):
    """A minimal client--routers--server topology.

    Returns ``(network, client, server)``; routers are named ``r0`` ..
    ``r{hops-1}`` with the client on ``r0`` and server on the last.
    """
    topo = Topology()
    for index in range(hops):
        topo.add_router(
            Router(
                f"r{index}",
                asn=100 + index,
                interface_addr=parse_addr(f"10.0.{index}.1"),
            )
        )
    for index in range(hops - 1):
        forward, backward = link_pair(f"r{index}", f"r{index + 1}", delay=link_delay)
        topo.add_link_pair(forward, backward)
    client = topo.add_host(Host("client", parse_addr("192.0.2.1"), "r0"))
    server = topo.add_host(
        Host("server", parse_addr("198.51.100.1"), f"r{hops - 1}")
    )
    net = Network(topo, seed=seed, mode=mode)
    return net, client, server


@pytest.fixture
def net_factory():
    """The :func:`build_two_host_net` builder, as a fixture.

    Subdirectory test modules cannot import the root conftest module
    directly, so the factory is exposed this way.
    """
    return build_two_host_net


@pytest.fixture
def two_host_net():
    """Fresh two-router fast-mode network per test."""
    return build_two_host_net()


@pytest.fixture
def two_host_net_event():
    """Fresh two-router event-mode network per test."""
    return build_two_host_net(mode=EVENT)


@pytest.fixture(scope="session")
def shared_world() -> SyntheticInternet:
    """One small synthetic Internet shared across the session.

    Tests must not mutate it (no probing that flips batch state); use
    ``fresh_world`` for anything stateful.
    """
    return SyntheticInternet(scaled_params(SHARED_SCALE, seed=SHARED_SEED))


@pytest.fixture
def fresh_world() -> SyntheticInternet:
    """A private synthetic Internet for tests that probe or mutate."""
    return SyntheticInternet(scaled_params(SHARED_SCALE, seed=SHARED_SEED))


@pytest.fixture(scope="session")
def study_results():
    """A complete measured study (traces + traceroutes), run once.

    Returns ``(world, trace_set, campaign)``.  Analysis tests share
    this; they only read.
    """
    world = SyntheticInternet(scaled_params(SHARED_SCALE, seed=SHARED_SEED))
    app = MeasurementApplication(world)
    trace_set = app.run_study()
    campaign = app.run_traceroutes()
    return world, trace_set, campaign
