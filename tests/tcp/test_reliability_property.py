"""Property test: TCP delivers exactly the bytes sent, despite loss.

Random payload sizes and loss seeds; the receiving application must
see the payload intact and in order, or the connection must fail
explicitly — silent corruption or reordering is never acceptable.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.host import Host
from repro.netsim.ipv4 import parse_addr
from repro.netsim.link import link_pair
from repro.netsim.network import FAST, Network
from repro.netsim.queues import BernoulliLoss
from repro.netsim.router import Router
from repro.netsim.topology import Topology
from repro.tcp.connection import TCPStack


def build_net(seed: int, loss_rate: float):
    topo = Topology()
    topo.add_router(Router("r0", asn=1, interface_addr=parse_addr("10.0.0.1")))
    topo.add_router(Router("r1", asn=2, interface_addr=parse_addr("10.0.1.1")))
    forward, backward = link_pair(
        "r0",
        "r1",
        delay=0.005,
        loss=BernoulliLoss(loss_rate),
        reverse_loss=BernoulliLoss(loss_rate / 2),
    )
    topo.add_link_pair(forward, backward)
    client = topo.add_host(Host("c", parse_addr("192.0.2.1"), "r0"))
    server = topo.add_host(Host("s", parse_addr("198.51.100.1"), "r1"))
    return Network(topo, seed=seed, mode=FAST), client, server


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 5000),
    size=st.integers(1, 40_000),
    loss_rate=st.sampled_from([0.0, 0.1, 0.25]),
)
def test_payload_delivered_intact_or_explicit_failure(seed, size, loss_rate):
    net, client, server = build_net(seed, loss_rate)
    payload = bytes((seed + i) % 256 for i in range(size))

    received = bytearray()
    stack_s = TCPStack(server)

    def on_connection(conn):
        conn.on_data = lambda c, data: received.extend(data)

    stack_s.listen(80, on_connection)

    failures = []
    stack_c = TCPStack(client)
    conn = stack_c.connect(server.addr, 80, syn_retries=8)
    conn.data_retries = 12
    conn.on_established = lambda c: c.send(payload)
    conn.on_failure = lambda c, reason: failures.append(reason)
    net.scheduler.run(max_events=500_000)

    if failures:
        # An explicit failure is allowed under heavy loss; partial,
        # silently truncated delivery is not success.
        assert loss_rate > 0
    else:
        assert bytes(received) == payload
