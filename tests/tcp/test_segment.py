"""Tests for the TCP segment codec and ECN flag semantics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netsim.checksum import internet_checksum, pseudo_header
from repro.netsim.errors import CodecError
from repro.netsim.ipv4 import PROTO_TCP, parse_addr
from repro.tcp.segment import Flags, TCPSegment

SRC = parse_addr("192.0.2.1")
DST = parse_addr("198.51.100.2")


class TestCodec:
    def test_roundtrip(self):
        segment = TCPSegment(
            src_port=33000,
            dst_port=80,
            seq=1000,
            ack=2000,
            flags=Flags.PSH | Flags.ACK,
            window=8192,
            payload=b"GET / HTTP/1.1\r\n\r\n",
        )
        decoded = TCPSegment.decode(segment.encode(SRC, DST))
        assert decoded == segment

    def test_mss_option_roundtrip(self):
        segment = TCPSegment(1, 2, flags=Flags.SYN, mss=1400)
        decoded = TCPSegment.decode(segment.encode(SRC, DST))
        assert decoded.mss == 1400

    def test_no_mss_when_absent(self):
        segment = TCPSegment(1, 2, flags=Flags.ACK)
        assert TCPSegment.decode(segment.encode(SRC, DST)).mss is None

    def test_checksum_valid_on_wire(self):
        wire = TCPSegment(1, 2, payload=b"data").encode(SRC, DST)
        pseudo = pseudo_header(SRC, DST, PROTO_TCP, len(wire))
        assert internet_checksum(pseudo + wire) == 0

    def test_checksum_verification(self):
        wire = bytearray(TCPSegment(1, 2, payload=b"data").encode(SRC, DST))
        wire[-1] ^= 0xFF
        with pytest.raises(CodecError):
            TCPSegment.decode(bytes(wire), SRC, DST, verify=True)

    def test_truncated_rejected(self):
        with pytest.raises(CodecError):
            TCPSegment.decode(b"\x00" * 10)

    def test_port_range_enforced(self):
        with pytest.raises(CodecError):
            TCPSegment(src_port=-1, dst_port=80).encode(SRC, DST)

    def test_seq_wraps_32_bits(self):
        segment = TCPSegment(1, 2, seq=0x1_0000_0005)
        assert TCPSegment.decode(segment.encode(SRC, DST)).seq == 5


class TestECNFlagSemantics:
    def test_ecn_setup_syn(self):
        syn = TCPSegment(1, 2, flags=Flags.SYN | Flags.ECE | Flags.CWR)
        assert syn.is_syn
        assert syn.is_ecn_setup_syn

    def test_plain_syn_is_not_ecn_setup(self):
        assert not TCPSegment(1, 2, flags=Flags.SYN).is_ecn_setup_syn

    def test_ecn_setup_synack(self):
        synack = TCPSegment(1, 2, flags=Flags.SYN | Flags.ACK | Flags.ECE)
        assert synack.is_synack
        assert synack.is_ecn_setup_synack

    def test_reflected_synack_is_invalid(self):
        """RFC 3168 §6.1.1: SYN-ACK with both ECE and CWR must be
        treated as NOT an ECN-setup SYN-ACK."""
        broken = TCPSegment(
            1, 2, flags=Flags.SYN | Flags.ACK | Flags.ECE | Flags.CWR
        )
        assert not broken.is_ecn_setup_synack

    def test_plain_synack_is_not_ecn_setup(self):
        assert not TCPSegment(1, 2, flags=Flags.SYN | Flags.ACK).is_ecn_setup_synack

    def test_synack_is_not_syn(self):
        segment = TCPSegment(1, 2, flags=Flags.SYN | Flags.ACK)
        assert not segment.is_syn
        assert segment.is_synack

    def test_flags_survive_wire(self):
        for flags in (
            Flags.SYN | Flags.ECE | Flags.CWR,
            Flags.SYN | Flags.ACK | Flags.ECE,
            Flags.ACK | Flags.ECE,
            Flags.ACK | Flags.CWR | Flags.PSH,
            Flags.RST | Flags.ACK,
            Flags.FIN | Flags.ACK,
        ):
            decoded = TCPSegment.decode(
                TCPSegment(1, 2, flags=flags).encode(SRC, DST)
            )
            assert decoded.flags == flags


@given(
    src_port=st.integers(0, 0xFFFF),
    dst_port=st.integers(0, 0xFFFF),
    seq=st.integers(0, 0xFFFFFFFF),
    ack=st.integers(0, 0xFFFFFFFF),
    flags=st.integers(0, 0xFF),
    window=st.integers(0, 0xFFFF),
    payload=st.binary(max_size=64),
    mss=st.one_of(st.none(), st.integers(0, 0xFFFF)),
)
def test_roundtrip_property(src_port, dst_port, seq, ack, flags, window, payload, mss):
    segment = TCPSegment(
        src_port=src_port,
        dst_port=dst_port,
        seq=seq,
        ack=ack,
        flags=Flags(flags),
        window=window,
        payload=payload,
        mss=mss,
    )
    decoded = TCPSegment.decode(segment.encode(SRC, DST), SRC, DST, verify=True)
    assert decoded == segment
