"""Tests for the TCP connection FSM and ECN negotiation."""

import pytest

from repro.netsim.link import Link
from repro.netsim.queues import BernoulliLoss
from repro.tcp.connection import ConnState, ECNServerPolicy, TCPStack
from repro.tcp.segment import Flags


def wire_server(server, ecn_policy=ECNServerPolicy.IGNORE, echo=True):
    """A trivial echo/sink application on port 80."""
    stack = TCPStack(server)
    accepted = []

    def on_connection(conn):
        accepted.append(conn)
        if echo:
            conn.on_data = lambda c, data: c.send(b"echo:" + data)

    stack.listen(80, on_connection, ecn_policy=ecn_policy)
    return stack, accepted


class TestHandshake:
    def test_three_way_handshake(self, two_host_net):
        net, client, server = two_host_net
        wire_server(server)
        stack = TCPStack(client)
        established = []
        conn = stack.connect(server.addr, 80)
        conn.on_established = lambda c: established.append(c)
        net.scheduler.run()
        assert established == [conn]
        assert conn.state is ConnState.ESTABLISHED

    def test_connection_refused_when_no_listener(self, two_host_net):
        net, client, server = two_host_net
        TCPStack(server)  # live stack, nothing listening
        stack = TCPStack(client)
        failures = []
        conn = stack.connect(server.addr, 80)
        conn.on_failure = lambda c, reason: failures.append(reason)
        net.scheduler.run()
        assert failures == ["refused"]
        assert conn.state is ConnState.FAILED

    def test_syn_timeout_when_host_silent(self, two_host_net):
        net, client, server = two_host_net
        # No TCP stack on the server at all: SYNs vanish.
        stack = TCPStack(client)
        failures = []
        conn = stack.connect(server.addr, 80, syn_retries=2)
        conn.on_failure = lambda c, reason: failures.append(reason)
        net.scheduler.run()
        assert failures == ["syn-timeout"]

    def test_data_echo(self, two_host_net):
        net, client, server = two_host_net
        wire_server(server)
        stack = TCPStack(client)
        received = []
        conn = stack.connect(server.addr, 80)
        conn.on_established = lambda c: c.send(b"hello")
        conn.on_data = lambda c, data: received.append(data)
        net.scheduler.run()
        assert received == [b"echo:hello"]

    def test_large_payload_is_segmented(self, two_host_net):
        net, client, server = two_host_net
        stack_s, accepted = wire_server(server, echo=False)
        got = []
        payload = bytes(range(256)) * 20  # > 3 MSS at mss=1460
        stack = TCPStack(client)
        conn = stack.connect(server.addr, 80)

        def on_conn_data(c, data):
            got.append(data)

        conn.on_established = lambda c: c.send(payload)
        net.scheduler.run()
        server_conn = accepted[0]
        # Reassemble on the server side via its data callback is not
        # wired in this test; instead check sequencing advanced fully.
        assert server_conn.rcv_nxt - (server_conn.rcv_nxt - len(payload)) == len(payload)


class TestECNNegotiation:
    @pytest.mark.parametrize(
        "policy,expect_negotiated",
        [
            (ECNServerPolicy.NEGOTIATE, True),
            (ECNServerPolicy.IGNORE, False),
            (ECNServerPolicy.REFLECT, False),
        ],
    )
    def test_policies(self, two_host_net, policy, expect_negotiated):
        net, client, server = two_host_net
        wire_server(server, ecn_policy=policy)
        stack = TCPStack(client)
        conn = stack.connect(server.addr, 80, use_ecn=True)
        net.scheduler.run()
        assert conn.state is ConnState.ESTABLISHED
        assert conn.ecn_active is expect_negotiated

    def test_reflect_policy_sets_both_bits_on_synack(self, two_host_net):
        net, client, server = two_host_net
        wire_server(server, ecn_policy=ECNServerPolicy.REFLECT)
        stack = TCPStack(client)
        conn = stack.connect(server.addr, 80, use_ecn=True)
        net.scheduler.run()
        assert conn.peer_syn_flags & Flags.ECE
        assert conn.peer_syn_flags & Flags.CWR

    def test_drop_ecn_syn_policy_times_out_ecn_but_answers_plain(self, two_host_net):
        net, client, server = two_host_net
        wire_server(server, ecn_policy=ECNServerPolicy.DROP_ECN_SYN)
        stack = TCPStack(client)
        failures = []
        ecn_conn = stack.connect(server.addr, 80, use_ecn=True, syn_retries=1)
        ecn_conn.on_failure = lambda c, reason: failures.append(reason)
        net.scheduler.run()
        assert failures == ["syn-timeout"]
        plain_conn = stack.connect(server.addr, 80, use_ecn=False)
        net.scheduler.run()
        assert plain_conn.state is ConnState.ESTABLISHED

    def test_plain_client_never_negotiates(self, two_host_net):
        net, client, server = two_host_net
        wire_server(server, ecn_policy=ECNServerPolicy.NEGOTIATE)
        stack = TCPStack(client)
        conn = stack.connect(server.addr, 80, use_ecn=False)
        net.scheduler.run()
        assert not conn.ecn_active
        assert not (conn.peer_syn_flags & Flags.ECE)

    def test_syn_is_sent_not_ect(self, two_host_net):
        """Footnote 1 of the paper: the ECN-setup SYN itself rides in a
        not-ECT marked IP packet."""
        net, client, server = two_host_net
        wire_server(server, ecn_policy=ECNServerPolicy.NEGOTIATE)
        marks = []
        client.add_tap(lambda d, p, t: marks.append((d, p.ecn)) if d == "out" else None)
        stack = TCPStack(client)
        stack.connect(server.addr, 80, use_ecn=True)
        net.scheduler.run()
        from repro.netsim.ecn import ECN

        assert marks[0] == ("out", ECN.NOT_ECT)


class TestTeardown:
    def test_orderly_close(self, two_host_net):
        net, client, server = two_host_net
        stack_s, accepted = wire_server(server, echo=False)
        stack = TCPStack(client)
        closes = []
        conn = stack.connect(server.addr, 80)
        conn.on_close = lambda c, reason: closes.append(reason)

        def server_close(c):
            c.close()

        conn.on_established = lambda c: net.scheduler.schedule(
            0.1, lambda: accepted[0].close()
        )
        net.scheduler.run()
        assert "peer-fin" in closes
        assert conn.state in (ConnState.CLOSE_WAIT, ConnState.CLOSED)

    def test_full_close_both_sides(self, two_host_net):
        net, client, server = two_host_net
        stack_s, accepted = wire_server(server, echo=False)
        stack = TCPStack(client)
        conn = stack.connect(server.addr, 80)
        conn.on_established = lambda c: c.close()

        net.scheduler.run_until(0.5)
        accepted[0].close()
        net.scheduler.run()
        assert accepted[0].state in (ConnState.CLOSED, ConnState.FAILED)

    def test_abort_sends_rst(self, two_host_net):
        net, client, server = two_host_net
        stack_s, accepted = wire_server(server, echo=False)
        failures = []
        stack = TCPStack(client)
        conn = stack.connect(server.addr, 80)
        net.scheduler.run()
        accepted[0].on_failure = lambda c, reason: failures.append(reason)
        conn.abort()
        net.scheduler.run()
        assert failures == ["reset"]
        assert accepted[0].state is ConnState.FAILED


class TestRetransmission:
    def _lossy_net(self, net_factory, loss_rate):
        net, client, server = net_factory(seed=13)
        forward, _ = net.topology.links_between("r0", "r1")
        forward.loss = BernoulliLoss(loss_rate)
        return net, client, server

    def test_data_survives_forward_loss(self, net_factory):
        net, client, server = self._lossy_net(net_factory, 0.3)
        wire_server(server)
        received = []
        stack = TCPStack(client)
        conn = stack.connect(server.addr, 80, syn_retries=8)
        conn.data_retries = 8
        conn.on_established = lambda c: c.send(b"important")
        conn.on_data = lambda c, data: received.append(data)
        net.scheduler.run()
        assert received == [b"echo:important"]

    def test_gives_up_after_retry_budget(self, net_factory):
        net, client, server = self._lossy_net(net_factory, 1.0)
        wire_server(server)
        failures = []
        stack = TCPStack(client)
        conn = stack.connect(server.addr, 80, syn_retries=2)
        conn.on_failure = lambda c, reason: failures.append(reason)
        net.scheduler.run()
        assert failures == ["syn-timeout"]

    def test_rto_backs_off_exponentially(self, net_factory):
        net, client, server = self._lossy_net(net_factory, 1.0)
        sent_times = []
        client.add_tap(lambda d, p, t: sent_times.append(t) if d == "out" else None)
        stack = TCPStack(client)
        stack.connect(server.addr, 80, syn_retries=3, rto_initial=1.0)
        net.scheduler.run()
        gaps = [b - a for a, b in zip(sent_times, sent_times[1:])]
        assert gaps == pytest.approx([1.0, 2.0, 4.0])
