"""Tests for the ECN data path: ECT marking, CE echo, ECE/CWR dance."""

from dataclasses import dataclass

from repro.netsim.ecn import ECN
from repro.netsim.ipv4 import PROTO_TCP
from repro.netsim.queues import AQMDecision, AQMModel, StaticCongestion
from repro.tcp.connection import ECNServerPolicy, TCPStack


@dataclass
class MarkAllECT(AQMModel):
    """Deterministic test AQM: CE-mark every ECT packet, pass the rest.

    A real RED queue at signal probability 1.0 would also *drop* every
    not-ECT packet (including the handshake); this variant isolates
    the marking path so the ECE/CWR dance can be tested
    deterministically.
    """

    def sample(self, rng, ect_capable):
        return AQMDecision.MARK if ect_capable else AQMDecision.PASS


def wire_sink(server, policy=ECNServerPolicy.NEGOTIATE):
    stack = TCPStack(server)
    accepted = []
    stack.listen(80, accepted.append, ecn_policy=policy)
    return stack, accepted


class TestECTMarking:
    def test_data_segments_marked_ect0_when_negotiated(self, two_host_net):
        net, client, server = two_host_net
        wire_sink(server)
        marks = []
        client.add_tap(
            lambda d, p, t: marks.append(p.ecn)
            if d == "out" and p.protocol == PROTO_TCP and len(p.payload) > 20
            else None
        )
        stack = TCPStack(client)
        conn = stack.connect(server.addr, 80, use_ecn=True)
        conn.on_established = lambda c: c.send(b"data!")
        net.scheduler.run()
        assert ECN.ECT_0 in marks
        assert conn.ecn_stats.ect_data_sent == 1

    def test_data_not_marked_without_negotiation(self, two_host_net):
        net, client, server = two_host_net
        wire_sink(server, policy=ECNServerPolicy.IGNORE)
        marks = set()
        client.add_tap(lambda d, p, t: marks.add(p.ecn) if d == "out" else None)
        stack = TCPStack(client)
        conn = stack.connect(server.addr, 80, use_ecn=True)
        conn.on_established = lambda c: c.send(b"data!")
        net.scheduler.run()
        assert marks == {ECN.NOT_ECT}

    def test_pure_acks_not_marked(self, two_host_net):
        net, client, server = two_host_net
        wire_sink(server)
        ack_marks = []
        client.add_tap(
            lambda d, p, t: ack_marks.append(p.ecn)
            if d == "out" and p.protocol == PROTO_TCP and len(p.payload) == 20
            else None
        )
        stack = TCPStack(client)
        conn = stack.connect(server.addr, 80, use_ecn=True)
        conn.on_established = lambda c: c.send(b"data!")
        net.scheduler.run()
        assert set(ack_marks) == {ECN.NOT_ECT}


class TestCongestionEcho:
    def _congested_ecn_path(self, net_factory):
        """Mark every ECT packet CE on the forward link."""
        net, client, server = net_factory(seed=2)
        forward, _ = net.topology.links_between("r0", "r1")
        forward.aqm = MarkAllECT()
        return net, client, server

    def test_ce_triggers_ece_and_cwr(self, net_factory):
        net, client, server = self._congested_ecn_path(net_factory)
        stack_s, accepted = wire_sink(server)
        stack = TCPStack(client)
        conn = stack.connect(server.addr, 80, use_ecn=True)
        # Two sends so the CWR-marked second data segment exists.
        def on_est(c):
            c.send(b"first")
            net.scheduler.schedule(0.5, lambda: c.send(b"second"))

        conn.on_established = on_est
        net.scheduler.run()
        server_conn = accepted[0]
        # The server saw CE on the first data segment and echoed ECE.
        assert server_conn.ecn_stats.ce_received >= 1
        assert server_conn.ecn_stats.ece_sent >= 1
        # The client received the echo and responded with CWR on the
        # next data segment.
        assert conn.ecn_stats.ece_received >= 1
        assert conn.ecn_stats.cwr_sent == 1
        assert server_conn.ecn_stats.cwr_received == 1

    def test_no_ce_no_echo(self, two_host_net):
        net, client, server = two_host_net
        stack_s, accepted = wire_sink(server)
        stack = TCPStack(client)
        conn = stack.connect(server.addr, 80, use_ecn=True)
        conn.on_established = lambda c: c.send(b"clean path")
        net.scheduler.run()
        assert accepted[0].ecn_stats.ce_received == 0
        assert accepted[0].ecn_stats.ece_sent == 0
        assert conn.ecn_stats.cwr_sent == 0

    def test_ece_stops_after_cwr(self, net_factory):
        """The receiver echoes ECE only until CWR arrives (RFC 3168)."""
        net, client, server = self._congested_ecn_path(net_factory)
        stack_s, accepted = wire_sink(server)
        stack = TCPStack(client)
        conn = stack.connect(server.addr, 80, use_ecn=True)

        def on_est(c):
            c.send(b"one")
            net.scheduler.schedule(0.5, lambda: c.send(b"two"))
            # After CWR lands, lift the congestion so segment three
            # arrives unmarked; its ACK must not carry ECE.
            def lift():
                forward, _ = net.topology.links_between("r0", "r1")
                forward.aqm = StaticCongestion(0.0)  # no more signalling
                c.send(b"three")

            net.scheduler.schedule(1.0, lift)

        conn.on_established = on_est
        net.scheduler.run()
        server_conn = accepted[0]
        assert server_conn.ecn_stats.cwr_received == 1
        # ECE was echoed while congestion was unacknowledged, then stopped:
        # the number of ECE-bearing ACKs is bounded by segments seen
        # before CWR (plus the CE of segment two itself).
        assert conn.ecn_stats.ece_received <= 2
