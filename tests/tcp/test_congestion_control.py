"""Tests for TCP congestion control and its ECN coupling."""

import pytest

from repro.netsim.buffered import buffered_pair
from repro.netsim.host import Host
from repro.netsim.ipv4 import parse_addr
from repro.netsim.network import EVENT, Network
from repro.netsim.queues import REDQueue
from repro.netsim.router import Router
from repro.netsim.topology import Topology
from repro.tcp.connection import ConnState, ECNServerPolicy, TCPStack


def sink_server(server, policy=ECNServerPolicy.NEGOTIATE):
    stack = TCPStack(server)
    accepted = []
    stack.listen(80, accepted.append, ecn_policy=policy)
    return stack, accepted


class TestWindowGating:
    def test_initial_window_is_rfc6928(self, two_host_net):
        net, client, server = two_host_net
        sink_server(server)
        stack = TCPStack(client)
        conn = stack.connect(server.addr, 80)
        net.scheduler.run()
        assert conn.cwnd == pytest.approx(10.0, abs=15)  # grown a bit by ACKs
        assert conn.in_flight == 0

    def test_large_send_is_gated_then_completes(self, two_host_net):
        net, client, server = two_host_net
        stack_s, accepted = sink_server(server)
        payload = bytes(30) * 2000  # ~60 KB: > initial window of MSS
        stack = TCPStack(client)
        conn = stack.connect(server.addr, 80)
        conn.on_established = lambda c: c.send(payload)
        net.scheduler.run()
        server_conn = accepted[0]
        received = (server_conn.rcv_nxt - (conn.snd_una - len(payload))) >= 0
        assert received
        assert conn._send_queue == []
        assert conn.in_flight == 0

    def test_cwnd_grows_during_transfer(self, two_host_net):
        net, client, server = two_host_net
        sink_server(server)
        stack = TCPStack(client)
        conn = stack.connect(server.addr, 80)
        conn.on_established = lambda c: c.send(bytes(60_000))
        net.scheduler.run()
        assert conn.cwnd > 10.0

    def test_close_after_large_send_delivers_everything(self, two_host_net):
        """The FIN must trail queued data, not jump the window gate."""
        net, client, server = two_host_net
        stack_s, accepted = sink_server(server)
        payload = bytes(50_000)
        closes = []
        stack = TCPStack(client)
        conn = stack.connect(server.addr, 80)

        def go(c):
            c.send(payload)
            c.close()

        conn.on_established = go
        net.scheduler.run()
        server_conn = accepted[0]
        # The server saw all the data and then the FIN, in order.
        assert server_conn.state in (ConnState.CLOSE_WAIT, ConnState.CLOSED)
        assert conn.state in (
            ConnState.FIN_WAIT_2,
            ConnState.TIME_WAIT,
            ConnState.CLOSED,
        )


class TestECNCongestionResponse:
    def _red_bottleneck(self):
        topo = Topology()
        topo.add_router(Router("r0", asn=1, interface_addr=parse_addr("10.0.0.1")))
        topo.add_router(Router("r1", asn=2, interface_addr=parse_addr("10.0.1.1")))
        red = REDQueue(
            min_threshold=3, max_threshold=10, max_probability=0.3, weight=0.2,
            ecn_capable_queue=True,
        )
        forward, backward = buffered_pair(
            "r0", "r1", bandwidth=2_000_000, delay=0.01, queue_limit=64, red=red
        )
        topo.add_link_pair(forward, backward)
        client = topo.add_host(Host("c", parse_addr("192.0.2.1"), "r0"))
        server = topo.add_host(Host("s", parse_addr("198.51.100.1"), "r1"))
        net = Network(topo, seed=3, mode=EVENT)
        forward.bind_clock(net.scheduler.clock)
        backward.bind_clock(net.scheduler.clock)
        return net, client, server, forward

    def test_ece_halves_cwnd(self, two_host_net):
        net, client, server = two_host_net
        sink_server(server)
        stack = TCPStack(client)
        conn = stack.connect(server.addr, 80, use_ecn=True)
        net.scheduler.run()
        conn.cwnd = 40.0
        conn.ssthresh = 64.0
        # Simulate an arriving pure ACK with ECE set.
        from repro.tcp.segment import Flags, TCPSegment
        from repro.netsim.ipv4 import IPv4Packet, PROTO_TCP

        ece_ack = TCPSegment(
            src_port=conn.remote_port,
            dst_port=conn.local_port,
            seq=conn.rcv_nxt,
            ack=conn.snd_nxt,
            flags=Flags.ACK | Flags.ECE,
        )
        fake = IPv4Packet(src=conn.remote_addr, dst=client.addr, protocol=PROTO_TCP)
        conn.handle_segment(ece_ack, fake)
        assert conn.cwnd == pytest.approx(20.0)
        assert conn.ssthresh == pytest.approx(20.0)

    def test_one_reduction_per_window(self, two_host_net):
        net, client, server = two_host_net
        sink_server(server)
        stack = TCPStack(client)
        conn = stack.connect(server.addr, 80, use_ecn=True)
        net.scheduler.run()
        conn.cwnd = 40.0
        from repro.tcp.segment import Flags, TCPSegment
        from repro.netsim.ipv4 import IPv4Packet, PROTO_TCP

        fake = IPv4Packet(src=conn.remote_addr, dst=client.addr, protocol=PROTO_TCP)
        for _ in range(5):
            ece_ack = TCPSegment(
                src_port=conn.remote_port,
                dst_port=conn.local_port,
                seq=conn.rcv_nxt,
                ack=conn.snd_nxt,
                flags=Flags.ACK | Flags.ECE,
            )
            conn.handle_segment(ece_ack, fake)
        # Repeated ECEs within the same window reduce only once.
        assert conn.cwnd == pytest.approx(20.0)

    def test_bulk_transfer_over_red_ecn_low_loss(self):
        """End to end: an ECN bulk transfer over a marking bottleneck
        completes with (near) zero retransmission timeouts."""
        net, client, server, bottleneck = self._red_bottleneck()
        stack_s, accepted = sink_server(server)
        stack = TCPStack(client)
        conn = stack.connect(server.addr, 80, use_ecn=True, syn_retries=4)
        conn.data_retries = 8
        payload = bytes(200_000)
        conn.on_established = lambda c: (c.send(payload), c.close())
        net.scheduler.run(max_events=2_000_000)
        assert conn.ecn_stats.ece_received > 0  # congestion was signalled
        assert bottleneck.ce_marks > 0
        # The ECT-marked data stream is marked rather than dropped; the
        # only RED casualties are the connection's not-ECT control
        # segments (handshake ACK, FIN) — few, and far fewer than marks.
        assert bottleneck.red_drops < bottleneck.ce_marks
        assert bottleneck.red_drops < 0.1 * bottleneck.delivered
        # cwnd came down from its peak in response.
        assert conn.cwnd < 64.0
