"""Serve-layer observability endpoints over real sockets.

Covers the live observability plane at the HTTP boundary: the
Prometheus exposition of ``/metrics``, the NDJSON since-cursor feed at
``/events``, and ``/healthz`` flipping to 503 when the shared worker
pool is lost.  Studies run at scale 0.002 with ``workers=0``, matching
the rest of the serve suite.
"""

import asyncio
import json

from repro.obs import PROM_CONTENT_TYPE, validate_exposition
from repro.obs.prom import metric_name
from repro.serve import ServeConfig, StudyServer

from serve_client import request, request_json, wait_idle

SCALE = 0.002
SEED = 3


def config(tmp_path, **overrides):
    defaults = dict(
        port=0,
        workers=0,
        queue_depth=8,
        tenant_quota=4,
        max_concurrent=2,
        data_dir=str(tmp_path / "results"),
    )
    defaults.update(overrides)
    return ServeConfig(**defaults)


def submit_body(seed=SEED, **extra):
    return {"scale": SCALE, "seed": seed, "tenant": "alice", **extra}


class TestPrometheusExposition:
    def test_live_exposition_passes_validator(self, tmp_path):
        async def go():
            server = StudyServer(config(tmp_path))
            await server.start()
            try:
                _, _, submitted = await request_json(
                    server.port, "POST", "/studies", submit_body()
                )
                await wait_idle(server)
                status, headers, payload = await request(
                    server.port, "GET", "/metrics?format=prometheus"
                )
                assert status == 200
                assert headers["content-type"] == PROM_CONTENT_TYPE
                text = payload.decode()
                types = validate_exposition(text)
                # Serve gauges ride along with the registry families.
                assert types[metric_name("serve.queued")] == "gauge"
                assert types[metric_name("serve.admitted_total")] == "gauge"
                # The scheduler observed the run's queue wait.
                assert (
                    types[metric_name("serve.queue_wait_seconds")] == "histogram"
                )
                assert f"{metric_name('serve.queue_wait_seconds')}_count 1" in text
            finally:
                await server.shutdown()

        asyncio.run(go())

    def test_unknown_format_is_400(self, tmp_path):
        async def go():
            server = StudyServer(config(tmp_path))
            await server.start()
            try:
                status, _, body = await request_json(
                    server.port, "GET", "/metrics?format=xml"
                )
                assert status == 400
                assert "format" in body["error"]
            finally:
                await server.shutdown()

        asyncio.run(go())


class TestEventsFeed:
    def test_lifecycle_events_and_since_cursor(self, tmp_path):
        async def go():
            server = StudyServer(config(tmp_path))
            await server.start()
            try:
                _, _, submitted = await request_json(
                    server.port, "POST", "/studies", submit_body()
                )
                run_id = submitted["run_id"]
                await wait_idle(server)

                status, headers, payload = await request(
                    server.port, "GET", "/events"
                )
                assert status == 200
                assert headers["content-type"] == "application/x-ndjson"
                events = [
                    json.loads(line) for line in payload.decode().splitlines()
                ]
                kinds = [e["kind"] for e in events]
                assert "serve-start" in kinds
                assert "serve-submit" in kinds
                assert "run-start" in kinds and "run-complete" in kinds
                for event in events:
                    if event["kind"].startswith("run-"):
                        assert event["run_id"] == run_id
                        assert event["tenant"] == "alice"

                # The advertised cursor resumes exactly past the window.
                cursor = int(headers["x-next-cursor"])
                assert cursor == events[-1]["seq"] + 1
                status, headers, payload = await request(
                    server.port, "GET", f"/events?since={cursor}"
                )
                assert status == 200 and payload == b""
                assert int(headers["x-next-cursor"]) == cursor

                # A mid-stream cursor returns only the suffix.
                status, _, payload = await request(
                    server.port, "GET", f"/events?since={events[2]['seq']}&limit=2"
                )
                window = [
                    json.loads(line) for line in payload.decode().splitlines()
                ]
                assert [e["seq"] for e in window] == [
                    events[2]["seq"],
                    events[3]["seq"],
                ]
            finally:
                await server.shutdown()

        asyncio.run(go())

    def test_bad_cursor_is_400(self, tmp_path):
        async def go():
            server = StudyServer(config(tmp_path))
            await server.start()
            try:
                for query in ("?since=abc", "?since=-1", "?limit=x"):
                    status, _, _ = await request_json(
                        server.port, "GET", f"/events{query}"
                    )
                    assert status == 400, query
            finally:
                await server.shutdown()

        asyncio.run(go())

    def test_rejection_emits_warning_event(self, tmp_path):
        async def go():
            server = StudyServer(config(tmp_path, queue_depth=1, max_concurrent=1))
            await server.start()
            try:
                # Long enough to hold the single slot while we overflow.
                await request_json(
                    server.port, "POST", "/studies",
                    submit_body(scale=0.01, seed=1),
                )
                statuses = []
                for seed in (2, 3, 4):
                    status, _, _ = await request_json(
                        server.port, "POST", "/studies", submit_body(seed=seed)
                    )
                    statuses.append(status)
                assert 429 in statuses
                _, _, payload = await request(server.port, "GET", "/events")
                rejects = [
                    json.loads(line)
                    for line in payload.decode().splitlines()
                    if json.loads(line)["kind"] == "serve-reject"
                ]
                assert rejects
                assert rejects[0]["level"] == "warning"
                assert rejects[0]["cause"] in ("queue-full", "tenant-quota")
                await wait_idle(server)
            finally:
                await server.shutdown()

        asyncio.run(go())


class TestHealthz:
    def test_healthy_without_pool_has_no_pool_section(self, tmp_path):
        async def go():
            server = StudyServer(config(tmp_path))
            await server.start()
            try:
                status, _, body = await request_json(server.port, "GET", "/healthz")
                assert status == 200
                assert body["status"] == "ok"
                assert "pool" not in body
            finally:
                await server.shutdown()

        asyncio.run(go())

    def test_lost_pool_degrades_to_503(self, tmp_path):
        async def go():
            server = StudyServer(config(tmp_path, workers=2))
            await server.start()
            try:
                # A configured-but-unstarted pool is healthy.
                status, _, body = await request_json(server.port, "GET", "/healthz")
                assert status == 200
                assert body["pool"]["workers"] == 2
                assert body["pool"]["lost"] is False

                # Simulate every worker process dying.
                server.scheduler.pool.describe = lambda: {
                    "workers": 2,
                    "workers_alive": 0,
                    "started": True,
                    "rebuilds": 1,
                    "lost": True,
                }
                status, _, body = await request_json(server.port, "GET", "/healthz")
                assert status == 503
                assert body["status"] == "degraded"
                assert body["pool"]["workers_alive"] == 0
            finally:
                await server.shutdown()

        asyncio.run(go())
