"""Unit tests for submission validation and the multi-tenant queue."""

import pytest

from repro.serve.queue import (
    MAX_CAMPAIGN_EPOCHS,
    QUEUE_FORMAT,
    CampaignJob,
    QueueFull,
    QuotaExceeded,
    StudyParams,
    StudyQueue,
    Submission,
    ValidationError,
    validate_campaign,
    validate_params,
    validate_priority,
    validate_tenant,
)


def sub(run_id, tenant="alice", priority=0, scale=0.01, seed=1):
    return Submission(
        run_id=run_id,
        tenant=tenant,
        priority=priority,
        params=StudyParams(scale=scale, seed=seed),
    )


class TestValidateParams:
    def test_defaults(self):
        params = validate_params({})
        assert params.scale == 0.1
        assert params.traceroutes is True
        assert params.chaos is None

    def test_unknown_field_rejected(self):
        with pytest.raises(ValidationError, match="unknown field"):
            validate_params({"scle": 0.1})

    @pytest.mark.parametrize(
        "payload",
        [
            {"scale": "big"},
            {"scale": True},
            {"scale": 0},
            {"scale": -0.5},
            {"scale": 1.5},
            {"seed": 1.5},
            {"seed": True},
            {"traceroutes": "yes"},
            {"chaos": "nope"},
            {"chaos": 7},
            {"chaos_seed": "x"},
            "not-a-dict",
        ],
    )
    def test_bad_values_rejected(self, payload):
        with pytest.raises(ValidationError):
            validate_params(payload)

    def test_chaos_profile_accepted(self):
        params = validate_params({"chaos": "light", "chaos_seed": 3})
        assert params.chaos == "light"
        assert params.chaos_seed == 3

    def test_world_key_ignores_execution_knobs(self):
        a = StudyParams(scale=0.01, seed=2, traceroutes=False)
        b = StudyParams(scale=0.01, seed=2, chaos="light")
        assert a.world_key() == b.world_key() == (0.01, 2)

    def test_roundtrip_through_dict(self):
        params = validate_params({"scale": 0.02, "seed": 9, "chaos": "light"})
        assert StudyParams.from_dict(params.to_dict()) == params


class TestValidateIdentity:
    def test_tenant_rules(self):
        assert validate_tenant("alice-1.prod") == "alice-1.prod"
        for bad in (None, "", 42, "a b", "x" * 65, "sl/ash"):
            with pytest.raises(ValidationError):
                validate_tenant(bad)

    def test_priority_rules(self):
        assert validate_priority(10) == 10
        assert validate_priority(-10) == -10
        for bad in ("5", True, 11, -11, 1.5):
            with pytest.raises(ValidationError):
                validate_priority(bad)


class TestQueueOrdering:
    def test_priority_then_fifo(self):
        queue = StudyQueue(depth=10, tenant_quota=10)
        queue.submit(sub("low-1", priority=-1))
        queue.submit(sub("mid-1"))
        queue.submit(sub("high", priority=5))
        queue.submit(sub("mid-2"))
        order = [queue.pop().run_id for _ in range(4)]
        assert order == ["high", "mid-1", "mid-2", "low-1"]
        assert queue.pop() is None

    def test_duplicate_run_id_rejected(self):
        queue = StudyQueue(depth=4, tenant_quota=4)
        queue.submit(sub("a"))
        with pytest.raises(ValidationError, match="duplicate"):
            queue.submit(sub("a"))
        queue.pop()  # now running, still a duplicate
        with pytest.raises(ValidationError, match="duplicate"):
            queue.submit(sub("a"))


class TestBackpressure:
    def test_depth_exhaustion(self):
        queue = StudyQueue(depth=2, tenant_quota=10)
        queue.submit(sub("a"))
        queue.submit(sub("b"))
        with pytest.raises(QueueFull):
            queue.submit(sub("c"))
        assert queue.stats.rejected_full == 1
        # Popping to running frees queue depth.
        queue.pop()
        queue.submit(sub("c"))

    def test_quota_counts_queued_plus_running(self):
        queue = StudyQueue(depth=10, tenant_quota=2)
        queue.submit(sub("a1"))
        queue.submit(sub("a2"))
        queue.pop()  # a1 running, a2 queued: still 2 held by alice
        with pytest.raises(QuotaExceeded):
            queue.submit(sub("a3"))
        assert queue.stats.rejected_quota == 1
        # Other tenants are unaffected.
        queue.submit(sub("b1", tenant="bob"))
        # Finishing the running study frees alice's slot.
        queue.finish("a1")
        queue.submit(sub("a3"))

    def test_retry_after_tracks_run_durations(self):
        queue = StudyQueue(depth=2, tenant_quota=2)
        queue.avg_run_seconds = 12.34
        assert queue.retry_after() == pytest.approx(12.3)
        queue.avg_run_seconds = 0.01
        assert queue.retry_after() == 1.0  # floored


class TestCancel:
    def test_cancel_queued(self):
        queue = StudyQueue(depth=4, tenant_quota=4)
        queue.submit(sub("a"))
        queue.submit(sub("b"))
        cancelled = queue.cancel("a")
        assert cancelled.run_id == "a"
        assert queue.stats.cancelled == 1
        # The stale heap entry is skipped at pop time.
        assert queue.pop().run_id == "b"
        assert queue.pop() is None

    def test_cancel_running_returns_none(self):
        queue = StudyQueue(depth=4, tenant_quota=4)
        queue.submit(sub("a"))
        queue.pop()
        assert queue.cancel("a") is None

    def test_cancel_frees_quota(self):
        queue = StudyQueue(depth=4, tenant_quota=1)
        queue.submit(sub("a"))
        queue.cancel("a")
        queue.submit(sub("b"))  # quota slot released


class TestPersistence:
    def test_snapshot_restore_preserves_order_and_ids(self):
        queue = StudyQueue(depth=10, tenant_quota=10)
        queue.submit(sub("a", priority=0))
        queue.submit(sub("b", priority=3))
        queue.submit(sub("c", priority=0))
        queue.pop()  # b is running: snapshots cover queued only
        snapshot = queue.snapshot()
        assert snapshot["format"] == QUEUE_FORMAT
        assert [e["run_id"] for e in snapshot["entries"]] == ["a", "c"]

        fresh = StudyQueue(depth=10, tenant_quota=10)
        restored = fresh.restore(snapshot)
        assert [s.run_id for s in restored] == ["a", "c"]
        assert fresh.pop().run_id == "a"
        assert fresh.pop().run_id == "c"

    def test_restore_rejects_foreign_documents(self):
        queue = StudyQueue(depth=4, tenant_quota=4)
        with pytest.raises(ValidationError):
            queue.restore({"format": "something-else", "entries": []})
        with pytest.raises(ValidationError):
            queue.restore({"format": QUEUE_FORMAT, "entries": "nope"})

    def test_restore_reapplies_admission_control(self):
        queue = StudyQueue(depth=10, tenant_quota=10)
        for i in range(3):
            queue.submit(sub(f"r{i}"))
        snapshot = queue.snapshot()
        tight = StudyQueue(depth=2, tenant_quota=10)
        with pytest.raises(QueueFull):
            tight.restore(snapshot)
        assert tight.queued_count == 2  # the admissible prefix survived


class TestValidateCampaign:
    def test_minimal(self):
        job = validate_campaign({"epochs": 3})
        assert job == CampaignJob(epochs=3)
        assert job.timeline == "fresh-look"
        assert job.pool_churn is True
        assert job.id is None

    def test_full(self):
        job = validate_campaign(
            {
                "epochs": 2,
                "start_year": 2020,
                "cadence_years": 0.5,
                "timeline": "frozen",
                "pool_churn": False,
                "id": "drift-watch",
            }
        )
        assert job.start_year == 2020.0
        assert job.cadence_years == 0.5
        assert job.timeline == "frozen"
        assert job.pool_churn is False
        assert job.id == "drift-watch"

    @pytest.mark.parametrize(
        "payload",
        [
            "not-a-dict",
            {},  # epochs required
            {"epochs": 0},
            {"epochs": True},
            {"epochs": "3"},
            {"epochs": MAX_CAMPAIGN_EPOCHS + 1},
            {"epochs": 1, "start_year": "soon"},
            {"epochs": 1, "cadence_years": 0},
            {"epochs": 1, "cadence_years": True},
            {"epochs": 1, "timeline": "no-such"},
            {"epochs": 1, "pool_churn": "yes"},
            {"epochs": 1, "id": ".hidden"},
            {"epochs": 1, "id": "spaced out"},
            {"epochs": 1, "id": "x" * 65},
            {"epochs": 1, "epocs": 2},  # unknown field
        ],
    )
    def test_bad_payloads_rejected(self, payload):
        with pytest.raises(ValidationError):
            validate_campaign(payload)

    def test_campaign_rides_in_study_params(self):
        params = validate_params({"scale": 0.02, "campaign": {"epochs": 2, "id": "c1"}})
        assert params.campaign == CampaignJob(epochs=2, id="c1")
        assert StudyParams.from_dict(params.to_dict()) == params

    def test_campaign_to_dict_is_sparse(self):
        assert CampaignJob(epochs=2).to_dict() == {"epochs": 2}
