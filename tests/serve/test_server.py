"""End-to-end tests of the study server over real sockets.

Studies run at scale 0.002 (seconds each) with ``workers=0`` — the
sequential thread path — so these tests exercise the full HTTP /
queue / scheduler / index stack without process-pool start-up cost.
The shared-pool execution path is covered by the runner suite and the
serve load benchmark.
"""

import asyncio
import json

import pytest

from repro.serve import ServeConfig, StudyServer
from repro.study import Study

from serve_client import request, request_json, wait_idle

SCALE = 0.002
SEED = 3


def config(tmp_path, **overrides):
    defaults = dict(
        port=0,
        workers=0,
        queue_depth=8,
        tenant_quota=4,
        max_concurrent=2,
        data_dir=str(tmp_path / "results"),
    )
    defaults.update(overrides)
    return ServeConfig(**defaults)


def submit_body(seed=SEED, **extra):
    return {"scale": SCALE, "seed": seed, "tenant": "alice", **extra}


class TestLifecycleAndArtifacts:
    def test_submit_stream_archive_dashboard(self, tmp_path):
        async def go():
            server = StudyServer(config(tmp_path))
            await server.start()
            port = server.port
            try:
                status, _, submitted = await request_json(
                    port, "POST", "/studies", submit_body()
                )
                assert status == 202
                run_id = submitted["run_id"]
                assert submitted["status"] == "queued"
                assert submitted["links"]["progress"].endswith("/progress")

                # The chunked progress stream runs to the terminal event.
                status, headers, payload = await request(
                    port, "GET", f"/studies/{run_id}/progress"
                )
                assert status == 200
                assert headers["transfer-encoding"] == "chunked"
                events = [json.loads(line) for line in payload.splitlines()]
                kinds = [event["type"] for event in events]
                assert kinds[0] == "queued"
                assert "started" in kinds and "progress" in kinds
                assert events[-1] == {
                    "type": "finished", "run_id": run_id, "status": "complete",
                }

                status, _, described = await request_json(
                    port, "GET", f"/studies/{run_id}"
                )
                assert status == 200 and described["status"] == "complete"
                assert described["elapsed_seconds"] > 0

                status, _, listing = await request_json(
                    port, "GET", f"/studies/{run_id}/artifacts"
                )
                assert status == 200
                for name in ("manifest.json", "traces.json", "report.txt"):
                    assert name in listing["artifacts"]

                status, _, manifest = await request_json(
                    port, "GET", f"/studies/{run_id}/artifacts/manifest.json"
                )
                assert status == 200
                assert manifest == {"scale": SCALE, "seed": SEED}

                status, _, page = await request(
                    port, "GET", f"/studies/{run_id}/dashboard"
                )
                assert status == 200 and b"<html" in page.lower()

                status, _, metrics = await request_json(port, "GET", "/metrics")
                assert metrics["queue"]["admitted"] == 1
                return run_id, server.data_dir
            finally:
                await server.shutdown()

        run_id, data_dir = asyncio.run(go())
        # Served archives are bit-identical to a direct Study.run save.
        direct = Study.run(scale=SCALE, seed=SEED)
        direct.save(data_dir / "direct")
        for name in ("manifest.json", "traces.json", "traceroutes.json",
                     "summary.json", "report.txt"):
            served = (data_dir / run_id / name).read_bytes()
            assert served == (data_dir / "direct" / name).read_bytes(), name

    def test_streaming_a_finished_run_replays_events(self, tmp_path):
        async def go():
            server = StudyServer(config(tmp_path))
            await server.start()
            try:
                _, _, submitted = await request_json(
                    server.port, "POST", "/studies", submit_body()
                )
                run_id = submitted["run_id"]
                await wait_idle(server)
                _, _, payload = await request(
                    server.port, "GET", f"/studies/{run_id}/progress"
                )
                events = [json.loads(line) for line in payload.splitlines()]
                assert events[-1]["status"] == "complete"
            finally:
                await server.shutdown()

        asyncio.run(go())


class TestValidationAndRouting:
    def test_rejections(self, tmp_path):
        async def go():
            server = StudyServer(config(tmp_path))
            await server.start()
            port = server.port
            try:
                checks = [
                    ("POST", "/studies", {"scale": 99, "tenant": "a"}, 400),
                    ("POST", "/studies", {"scale": SCALE, "bogus": 1, "tenant": "a"}, 400),
                    ("POST", "/studies", {"scale": SCALE}, 400),  # no tenant
                    ("POST", "/studies", {"scale": SCALE, "tenant": "a", "priority": 99}, 400),
                    ("POST", "/studies", {"scale": SCALE, "tenant": "a", "chaos": "??"}, 400),
                    ("GET", "/studies/run-nope", None, 404),
                    ("DELETE", "/studies/run-nope", None, 404),
                    ("GET", "/studies/run-nope/progress", None, 404),
                    ("GET", "/nowhere", None, 404),
                    ("PUT", "/studies", {"x": 1}, 405),
                    ("POST", "/studies/run-nope/progress", {"x": 1}, 405),
                ]
                for method, path, body, expected in checks:
                    status, _, payload = await request_json(port, method, path, body)
                    assert status == expected, (method, path, status, payload)
                    assert payload["status"] == expected
                # Malformed JSON body.
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                writer.write(
                    b"POST /studies HTTP/1.1\r\nContent-Length: 4\r\n\r\nnope"
                )
                await writer.drain()
                raw = await reader.read()
                writer.close()
                assert b"400" in raw.split(b"\r\n", 1)[0]
            finally:
                await server.shutdown()

        asyncio.run(go())


class TestBackpressureAndCancel:
    def test_quota_queue_full_and_cancel(self, tmp_path):
        async def go():
            server = StudyServer(
                config(tmp_path, max_concurrent=1, queue_depth=2, tenant_quota=2)
            )
            await server.start()
            port = server.port
            try:
                # alice: one running + one queued = at quota.
                _, _, first = await request_json(
                    port, "POST", "/studies", submit_body(seed=100)
                )
                # Let the dispatcher move the first study into its
                # running slot so queue depth counts queued only.
                for _ in range(200):
                    if server.queue.running_count == 1:
                        break
                    await asyncio.sleep(0.01)
                _, _, second = await request_json(
                    port, "POST", "/studies", submit_body(seed=101)
                )
                status, headers, rejected = await request_json(
                    port, "POST", "/studies", submit_body(seed=102)
                )
                assert status == 429
                assert "quota" in rejected["error"]
                assert int(headers["retry-after"]) >= 1

                # bob fills the remaining queue slot; the queue is full.
                _, _, third = await request_json(
                    port, "POST", "/studies",
                    {"scale": SCALE, "seed": 103, "tenant": "bob"},
                )
                status, headers, rejected = await request_json(
                    port, "POST", "/studies",
                    {"scale": SCALE, "seed": 104, "tenant": "carol"},
                )
                assert status == 429
                assert "full" in rejected["error"]
                assert int(headers["retry-after"]) >= 1

                # Cancel the queued-but-unstarted alice study.
                status, _, cancelled = await request_json(
                    port, "DELETE", f"/studies/{second['run_id']}"
                )
                assert status == 200 and cancelled["status"] == "cancelled"

                # The running study cannot be cancelled.
                status, _, refused = await request_json(
                    port, "DELETE", f"/studies/{first['run_id']}"
                )
                assert status == 409

                # Cancelling twice conflicts too (no longer queued).
                status, _, _ = await request_json(
                    port, "DELETE", f"/studies/{second['run_id']}"
                )
                assert status == 409

                await wait_idle(server)
                _, _, listing = await request_json(port, "GET", "/studies")
                statuses = {
                    run["run_id"]: run["status"] for run in listing["studies"]
                }
                assert statuses[first["run_id"]] == "complete"
                assert statuses[second["run_id"]] == "cancelled"
                assert statuses[third["run_id"]] == "complete"
                # The cancelled run produced no archive directory.
                assert not (server.data_dir / second["run_id"]).exists()
            finally:
                await server.shutdown()

        asyncio.run(go())


class TestWorldReuse:
    def test_identical_params_share_world_not_results(self, tmp_path):
        async def go():
            server = StudyServer(config(tmp_path))
            await server.start()
            port = server.port
            try:
                _, _, a = await request_json(
                    port, "POST", "/studies", submit_body()
                )
                _, _, b = await request_json(
                    port, "POST", "/studies", submit_body()
                )
                assert a["run_id"] != b["run_id"]
                await wait_idle(server)
                _, _, metrics = await request_json(port, "GET", "/metrics")
                counters = metrics["metrics"]["counters"]
                assert counters["serve.completed"] == 2
                # One world build; the second study hit the cache.
                assert counters["serve.world_cache.misses"] == 1
                assert counters["serve.world_cache.hits"] >= 1
                return a["run_id"], b["run_id"], server.data_dir
            finally:
                await server.shutdown()

        run_a, run_b, data_dir = asyncio.run(go())
        # Same bytes in both archives — separate executions, not a
        # cached result being copied.
        for name in ("manifest.json", "traces.json", "summary.json"):
            assert (data_dir / run_a / name).read_bytes() == (
                data_dir / run_b / name
            ).read_bytes()


class TestShutdownResume:
    def test_draining_rejects_new_submissions(self, tmp_path):
        async def go():
            server = StudyServer(config(tmp_path))
            await server.start()
            server.request_shutdown()
            status, _, payload = await request_json(
                server.port, "POST", "/studies", submit_body()
            )
            assert status == 503
            await server.shutdown()

        asyncio.run(go())

    def test_queue_persists_and_resumes_exactly_once(self, tmp_path):
        cfg = config(tmp_path, max_concurrent=1)

        async def generation_one():
            server = StudyServer(cfg)
            await server.start()
            port = server.port
            ids = []
            for seed in (200, 201, 202):
                _, _, submitted = await request_json(
                    port, "POST", "/studies", submit_body(seed=seed)
                )
                ids.append(submitted["run_id"])
            # Let the first study reach its running slot, then shut
            # down: the running study drains, the queued tail persists.
            for _ in range(200):
                if server.queue.running_count == 1:
                    break
                await asyncio.sleep(0.01)
            await server.shutdown()
            return ids

        ids = asyncio.run(generation_one())
        queue_path = tmp_path / "results" / "queue.json"
        assert queue_path.exists()
        snapshot = json.loads(queue_path.read_text())
        persisted = [entry["run_id"] for entry in snapshot["entries"]]
        assert set(persisted) < set(ids) and persisted

        async def generation_two():
            server = StudyServer(cfg)
            await server.start()
            await wait_idle(server)
            _, _, listing = await request_json(server.port, "GET", "/studies")
            await server.shutdown()
            return listing

        listing = asyncio.run(generation_two())
        statuses = {run["run_id"]: run["status"] for run in listing["studies"]}
        assert [statuses[run_id] for run_id in ids] == ["complete"] * 3
        # Every run archived exactly once, under its original id.
        for run_id in ids:
            assert (tmp_path / "results" / run_id / "manifest.json").exists()
        assert not queue_path.exists()

    def test_admin_shutdown_endpoint_arms_draining(self, tmp_path):
        async def go():
            server = StudyServer(config(tmp_path))
            await server.start()
            status, _, payload = await request_json(
                server.port, "POST", "/admin/shutdown", {}
            )
            assert status == 200 and payload["status"] == "draining"
            await asyncio.wait_for(server.serve_until_shutdown(), timeout=30)

        asyncio.run(go())


class TestLegacyAdoption:
    def test_pre_index_archives_are_served(self, tmp_path):
        results = tmp_path / "results"
        legacy = results / "old-study"
        direct = Study.run(scale=SCALE, seed=SEED)
        direct.save(legacy)

        async def go():
            server = StudyServer(config(tmp_path))
            await server.start()
            port = server.port
            try:
                _, _, listing = await request_json(port, "GET", "/studies")
                assert [run["run_id"] for run in listing["studies"]] == ["old-study"]
                status, _, manifest = await request_json(
                    port, "GET", "/studies/old-study/artifacts/manifest.json"
                )
                assert status == 200 and manifest["scale"] == SCALE
            finally:
                await server.shutdown()

        asyncio.run(go())


class TestFailureIsolation:
    def test_failed_study_reports_and_frees_slot(self, tmp_path, monkeypatch):
        from repro.serve import scheduler as scheduler_module

        def boom(self, submission, progress):
            raise RuntimeError("synthetic study failure")

        monkeypatch.setattr(scheduler_module.StudyScheduler, "_execute", boom)

        async def go():
            server = StudyServer(config(tmp_path))
            await server.start()
            port = server.port
            try:
                _, _, submitted = await request_json(
                    port, "POST", "/studies", submit_body()
                )
                run_id = submitted["run_id"]
                _, _, payload = await request(port, "GET", f"/studies/{run_id}/progress")
                events = [json.loads(line) for line in payload.splitlines()]
                assert events[-1]["status"] == "failed"
                assert "synthetic study failure" in events[-1]["error"]
                status, _, described = await request_json(
                    port, "GET", f"/studies/{run_id}"
                )
                assert described["status"] == "failed"
                _, _, metrics = await request_json(port, "GET", "/metrics")
                assert metrics["metrics"]["counters"]["serve.failed"] == 1
                assert server.queue.running_count == 0  # slot released
            finally:
                await server.shutdown()

        asyncio.run(go())


class TestTraversalGuard:
    def test_artifact_paths_stay_inside_the_run(self, tmp_path):
        async def go():
            server = StudyServer(config(tmp_path))
            await server.start()
            port = server.port
            try:
                _, _, submitted = await request_json(
                    port, "POST", "/studies", submit_body()
                )
                run_id = submitted["run_id"]
                await wait_idle(server)
                for path in (
                    f"/studies/{run_id}/artifacts/../index.json",
                    f"/studies/{run_id}/artifacts/../../results/index.json",
                    f"/studies/{run_id}/artifacts/%2e%2e/index.json",
                ):
                    status, _, _ = await request(port, "GET", path)
                    assert status == 404, path
            finally:
                await server.shutdown()

        asyncio.run(go())
