"""A raw asyncio HTTP client for driving the study server in tests.

The tests drive the real server over real sockets with a deliberately
independent client (hand-rolled request bytes, hand-decoded chunked
framing) so framing bugs cannot cancel out between the two sides.
"""

from __future__ import annotations

import asyncio
import json


async def request(port, method, path, body=None, headers=None):
    """One HTTP exchange; returns ``(status, headers, payload bytes)``."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    data = json.dumps(body).encode() if body is not None else b""
    head = f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
    for name, value in (headers or {}).items():
        head += f"{name}: {value}\r\n"
    if data:
        head += f"Content-Length: {len(data)}\r\n"
    writer.write(head.encode() + b"\r\n" + data)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    try:
        await writer.wait_closed()
    except ConnectionError:
        pass
    status = int(raw.split(b" ", 2)[1])
    raw_head, _, payload = raw.partition(b"\r\n\r\n")
    response_headers = {}
    for line in raw_head.split(b"\r\n")[1:]:
        name, _, value = line.decode("latin-1").partition(":")
        response_headers[name.strip().lower()] = value.strip()
    if response_headers.get("transfer-encoding") == "chunked":
        decoded, rest = b"", payload
        while rest:
            size_text, _, rest = rest.partition(b"\r\n")
            size = int(size_text, 16)
            if size == 0:
                break
            decoded += rest[:size]
            rest = rest[size + 2:]
        payload = decoded
    return status, response_headers, payload


async def request_json(port, method, path, body=None, headers=None):
    """Like :func:`request` but decodes the payload as JSON."""
    status, response_headers, payload = await request(
        port, method, path, body=body, headers=headers
    )
    return status, response_headers, json.loads(payload) if payload else None


async def wait_idle(server, timeout=120.0):
    """Wait until the server has no queued or running studies."""
    deadline = asyncio.get_running_loop().time() + timeout
    while asyncio.get_running_loop().time() < deadline:
        if server.queue.queued_count == 0 and server.scheduler.running_count == 0:
            return
        await asyncio.sleep(0.05)
    raise TimeoutError("server did not go idle")
