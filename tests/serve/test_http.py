"""Unit tests for the minimal HTTP/1.1 layer of the study server."""

import asyncio
import json

import pytest

from repro.serve.http import (
    MAX_BODY_BYTES,
    MAX_HEADERS,
    ChunkedWriter,
    HttpError,
    Response,
    read_request,
    write_response,
)


def parse(raw: bytes):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(go())


class FakeWriter:
    """Captures bytes; satisfies the write/drain surface the layer uses."""

    def __init__(self):
        self.data = b""

    def write(self, chunk: bytes) -> None:
        self.data += chunk

    async def drain(self) -> None:
        pass


class TestReadRequest:
    def test_get_with_query(self):
        request = parse(b"GET /studies?limit=3&x=y%20z HTTP/1.1\r\nHost: h\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/studies"
        assert request.query == {"limit": "3", "x": "y z"}
        assert request.headers["host"] == "h"
        assert request.body == b""

    def test_post_with_body(self):
        body = json.dumps({"scale": 0.01}).encode()
        raw = (
            b"POST /studies HTTP/1.1\r\nContent-Length: "
            + str(len(body)).encode()
            + b"\r\n\r\n"
            + body
        )
        request = parse(raw)
        assert request.method == "POST"
        assert request.json() == {"scale": 0.01}

    def test_peer_closed_before_request_is_none(self):
        assert parse(b"") is None

    def test_malformed_request_line(self):
        with pytest.raises(HttpError) as exc:
            parse(b"NONSENSE\r\n\r\n")
        assert exc.value.status == 400

    def test_malformed_header(self):
        with pytest.raises(HttpError) as exc:
            parse(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n")
        assert exc.value.status == 400

    def test_bad_content_length(self):
        with pytest.raises(HttpError) as exc:
            parse(b"GET / HTTP/1.1\r\nContent-Length: ponies\r\n\r\n")
        assert exc.value.status == 400

    def test_oversize_body_is_413(self):
        raw = (
            b"POST / HTTP/1.1\r\nContent-Length: "
            + str(MAX_BODY_BYTES + 1).encode()
            + b"\r\n\r\n"
        )
        with pytest.raises(HttpError) as exc:
            parse(raw)
        assert exc.value.status == 413

    def test_truncated_body_is_400(self):
        with pytest.raises(HttpError) as exc:
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")
        assert exc.value.status == 400

    def test_oversize_header_line_is_431(self):
        raw = b"GET / HTTP/1.1\r\nX-Big: " + b"a" * (17 * 1024) + b"\r\n\r\n"
        with pytest.raises(HttpError) as exc:
            parse(raw)
        assert exc.value.status == 431

    def test_too_many_headers_is_431(self):
        headers = b"".join(
            b"X-H%d: v\r\n" % i for i in range(MAX_HEADERS + 1)
        )
        with pytest.raises(HttpError) as exc:
            parse(b"GET / HTTP/1.1\r\n" + headers + b"\r\n")
        assert exc.value.status == 431

    def test_json_body_failures_map_to_400(self):
        request = parse(b"POST / HTTP/1.1\r\nContent-Length: 3\r\n\r\nnot")
        with pytest.raises(HttpError) as exc:
            request.json()
        assert exc.value.status == 400
        empty = parse(b"POST / HTTP/1.1\r\n\r\n")
        with pytest.raises(HttpError):
            empty.json()


class TestWriteResponse:
    def serialise(self, response: Response) -> bytes:
        writer = FakeWriter()
        asyncio.run(write_response(writer, response))
        return writer.data

    def test_json_response_framing(self):
        data = self.serialise(Response.json({"ok": True}, status=202))
        head, _, body = data.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 202 Accepted\r\n")
        assert b"Content-Type: application/json" in head
        assert b"Connection: close" in head
        assert int(dict(
            line.split(b": ", 1) for line in head.split(b"\r\n")[1:]
        )[b"Content-Length"]) == len(body)
        assert json.loads(body) == {"ok": True}

    def test_error_carries_extra_headers(self):
        data = self.serialise(Response.error(429, "slow down", **{"Retry-After": "7"}))
        head = data.partition(b"\r\n\r\n")[0]
        assert head.startswith(b"HTTP/1.1 429 Too Many Requests\r\n")
        assert b"Retry-After: 7" in head

    def test_chunked_writer_framing(self):
        writer = FakeWriter()

        async def go():
            chunked = ChunkedWriter(writer)
            await chunked.start(content_type="application/x-ndjson")
            await chunked.send("hello\n")
            await chunked.send(b"")  # empty chunks are skipped (0 = end)
            await chunked.send(b"world\n")
            await chunked.finish()

        asyncio.run(go())
        head, _, body = writer.data.partition(b"\r\n\r\n")
        assert b"Transfer-Encoding: chunked" in head
        assert body == b"6\r\nhello\n\r\n6\r\nworld\n\r\n0\r\n\r\n"

    def test_finish_without_start_writes_nothing(self):
        writer = FakeWriter()
        asyncio.run(ChunkedWriter(writer).finish())
        assert writer.data == b""
