"""Unit tests for the results tree's run-id index and its migration."""

import json

import pytest

from repro.serve.index import (
    INDEX_FORMAT,
    STATUS_COMPLETE,
    STATUS_QUEUED,
    StudyIndex,
    StudyIndexError,
    migrate_results_root,
)


class TestStudyIndex:
    def test_register_and_reload(self, tmp_path):
        index = StudyIndex(tmp_path)
        entry = index.register("run-1", tmp_path / "run-1", scale=0.01, seed=7,
                               status=STATUS_QUEUED, tenant="alice")
        assert entry["dir"] == "run-1"  # stored relative to the root
        assert "run-1" in index and len(index) == 1

        reloaded = StudyIndex(tmp_path)
        got = reloaded.get("run-1")
        assert got["scale"] == 0.01 and got["tenant"] == "alice"
        assert reloaded.directory("run-1") == tmp_path / "run-1"

    def test_document_format(self, tmp_path):
        StudyIndex(tmp_path).register("r", tmp_path / "r", scale=0.1, seed=1)
        document = json.loads((tmp_path / "index.json").read_text())
        assert document["format"] == INDEX_FORMAT
        assert list(document["studies"]) == ["r"]

    def test_outside_directory_stays_absolute(self, tmp_path):
        index = StudyIndex(tmp_path / "root")
        elsewhere = tmp_path / "elsewhere" / "x"
        index.register("r", elsewhere, scale=0.1, seed=1)
        assert StudyIndex(tmp_path / "root").directory("r") == elsewhere

    def test_set_status(self, tmp_path):
        index = StudyIndex(tmp_path)
        index.register("r", tmp_path / "r", scale=0.1, seed=1, status=STATUS_QUEUED)
        index.set_status("r", STATUS_COMPLETE)
        assert StudyIndex(tmp_path).get("r")["status"] == STATUS_COMPLETE
        with pytest.raises(KeyError):
            index.set_status("ghost", STATUS_COMPLETE)

    def test_remove(self, tmp_path):
        index = StudyIndex(tmp_path)
        index.register("r", tmp_path / "r", scale=0.1, seed=1)
        index.remove("r")
        index.remove("r")  # idempotent
        assert "r" not in StudyIndex(tmp_path)

    def test_corrupt_index_raises(self, tmp_path):
        (tmp_path / "index.json").write_text("{not json")
        with pytest.raises(StudyIndexError):
            StudyIndex(tmp_path)

    def test_foreign_format_raises(self, tmp_path):
        (tmp_path / "index.json").write_text(json.dumps({"format": "other/9"}))
        with pytest.raises(StudyIndexError):
            StudyIndex(tmp_path)

    def test_entries_are_copies(self, tmp_path):
        index = StudyIndex(tmp_path)
        index.register("r", tmp_path / "r", scale=0.1, seed=1)
        index.entries()["r"]["status"] = "mutated"
        assert index.get("r")["status"] == STATUS_COMPLETE


class TestMigration:
    def make_archive(self, root, name, scale=0.02, seed=3):
        directory = root / name
        directory.mkdir(parents=True)
        (directory / "manifest.json").write_text(
            json.dumps({"scale": scale, "seed": seed})
        )
        return directory

    def test_adopts_legacy_archives(self, tmp_path):
        self.make_archive(tmp_path, "study-a")
        self.make_archive(tmp_path, "study-b", seed=4)
        (tmp_path / "not-a-study").mkdir()  # no manifest: skipped
        index, added = migrate_results_root(tmp_path)
        assert sorted(added) == ["study-a", "study-b"]
        assert index.get("study-a")["status"] == STATUS_COMPLETE
        assert index.get("study-b")["seed"] == 4

    def test_migration_is_idempotent(self, tmp_path):
        self.make_archive(tmp_path, "study-a")
        migrate_results_root(tmp_path)
        _, added = migrate_results_root(tmp_path)
        assert added == []

    def test_unreadable_manifest_skipped(self, tmp_path):
        directory = tmp_path / "broken"
        directory.mkdir()
        (directory / "manifest.json").write_text("{nope")
        _, added = migrate_results_root(tmp_path)
        assert added == []

    def test_missing_root_is_empty(self, tmp_path):
        index, added = migrate_results_root(tmp_path / "ghost")
        assert added == [] and len(index) == 0

    def test_existing_entries_not_clobbered(self, tmp_path):
        directory = self.make_archive(tmp_path, "study-a")
        index = StudyIndex(tmp_path)
        index.register("study-a", directory, scale=0.5, seed=99, tenant="alice")
        _, added = migrate_results_root(tmp_path)
        assert added == []
        assert StudyIndex(tmp_path).get("study-a")["seed"] == 99


class TestCampaignMigration:
    def make_campaign(self, root, name, epochs=2, scale=0.02, seed=7):
        directory = root / name
        (directory / "epochs").mkdir(parents=True)
        (directory / "campaign.json").write_text(
            json.dumps(
                {
                    "format": "ecn-udp-campaign/1",
                    "spec": {"scale": scale, "seed": seed},
                    "target_epochs": epochs,
                }
            )
        )
        for epoch in range(epochs):
            epoch_dir = directory / "epochs" / f"epoch-{epoch:04d}"
            epoch_dir.mkdir()
            (epoch_dir / "manifest.json").write_text(
                json.dumps({"scale": scale, "seed": seed})
            )
        return directory

    def test_adopts_campaign_and_member_epochs(self, tmp_path):
        self.make_campaign(tmp_path, "drift")
        index, added = migrate_results_root(tmp_path)
        assert added == ["drift", "drift/epoch-0000", "drift/epoch-0001"]
        entry = index.get("drift")
        assert entry["kind"] == "campaign"
        assert entry["epochs"] == ["drift/epoch-0000", "drift/epoch-0001"]
        epoch = index.get("drift/epoch-0000")
        assert epoch["campaign"] == "drift"
        assert index.directory("drift/epoch-0000") == (
            tmp_path / "drift" / "epochs" / "epoch-0000"
        )

    def test_campaign_migration_is_idempotent(self, tmp_path):
        self.make_campaign(tmp_path, "drift")
        migrate_results_root(tmp_path)
        _, added = migrate_results_root(tmp_path)
        assert added == []

    def test_extended_campaign_gains_only_new_epochs(self, tmp_path):
        directory = self.make_campaign(tmp_path, "drift", epochs=2)
        migrate_results_root(tmp_path)
        epoch_dir = directory / "epochs" / "epoch-0002"
        epoch_dir.mkdir()
        (epoch_dir / "manifest.json").write_text(json.dumps({"scale": 0.02}))
        index, added = migrate_results_root(tmp_path)
        assert added == ["drift/epoch-0002"]
        assert index.get("drift")["epochs"] == [
            "drift/epoch-0000",
            "drift/epoch-0001",
            "drift/epoch-0002",
        ]

    def test_foreign_campaign_manifest_skipped(self, tmp_path):
        directory = tmp_path / "odd"
        directory.mkdir()
        (directory / "campaign.json").write_text(json.dumps({"format": "other/1"}))
        _, added = migrate_results_root(tmp_path)
        assert added == []
