"""The measurement stack also runs on the hop-by-hop event engine.

The study normally runs in fast mode for throughput; this integration
test runs a complete trace plus traceroutes on a small world in EVENT
mode and checks the same calibrated shapes emerge — demonstrating the
two execution modes are interchangeable at the system level, not just
per packet (which the parity property already covers).
"""

import pytest

from repro.core.measurement import MeasurementApplication
from repro.core.analysis import analyze_campaign
from repro.netsim.network import EVENT
from repro.scenario.internet import SyntheticInternet
from repro.scenario.parameters import scaled_params


@pytest.fixture(scope="module")
def event_world():
    return SyntheticInternet(scaled_params(0.02, seed=99), mode=EVENT)


class TestEventModeMeasurement:
    def test_trace_shapes(self, event_world):
        world = event_world
        app = MeasurementApplication(world)
        trace = app.run_trace("ec2-ireland", trace_id=0, batch=1)
        total = len(world.servers)
        assert trace.count_udp_plain() > 0.8 * total
        assert trace.pct_ect_given_plain() > 85.0
        negotiated = trace.count_ecn_negotiated()
        reachable_tcp = trace.count_tcp_plain()
        assert reachable_tcp > 0.35 * total
        assert 0.6 * reachable_tcp < negotiated < reachable_tcp

    def test_blocked_servers_blocked_in_event_mode(self, event_world):
        world = event_world
        app = MeasurementApplication(world)
        trace = app.run_trace("perkins-home", trace_id=1, batch=1)
        for addr in world.ground_truth.udp_ect_blocked:
            outcome = trace.outcome_for(addr)
            assert outcome.udp_plain and not outcome.udp_ect

    def test_traceroutes_in_event_mode(self, event_world):
        world = event_world
        app = MeasurementApplication(world)
        campaign = app.run_traceroutes(
            vantage_keys=["ugla-wired"],
            targets=[s.addr for s in world.servers[:15]],
        )
        analysis = analyze_campaign(campaign, world.as_map)
        assert analysis.hops_measured > 40
        assert analysis.pct_hops_passing > 80.0
