"""Experiment F3 — Figure 3: per-server differential reachability.

Regenerates both panels and asserts the paper's findings: a small set
of servers shows >50 % differential reachability in panel 3a — the
same set from every vantage (destination-side blocking) — while panel
3b shows at most a few servers, two of them EC2-only (the Phoenix
Public Library pair).
"""

from repro.core.analysis.differential import (
    DifferentialAnalysis,
    transient_vs_persistent,
)
from repro.reporting.report import render_figure3


def test_figure3_panels(benchmark, bench_study, bench_world):
    def regenerate():
        return (
            DifferentialAnalysis(bench_study, "plain-only"),
            DifferentialAnalysis(bench_study, "ect-only"),
        )

    analysis_a, analysis_b = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print()
    print(render_figure3(analysis_a, analysis_b))

    truth = bench_world.ground_truth
    expected_blocked = truth.udp_ect_blocked | truth.any_ect_blocked

    # 3a: the blocked servers spike >50 % from every vantage, and the
    # spike set is (nearly) the same everywhere — the paper's evidence
    # of near-destination drops.
    everywhere = analysis_a.servers_above_everywhere(0.5)
    assert expected_blocked <= everywhere
    assert len(everywhere - expected_blocked) <= 2

    counts = analysis_a.count_above_per_vantage(0.5)
    low, high = min(counts.values()), max(counts.values())
    # Paper: 'between 9 and 14, depending on the location' (scaled).
    assert low >= len(expected_blocked)
    assert high <= len(expected_blocked) + len(truth.flaky_ect_blocked) + 3

    # 3b: at most a few spikes, bounded by the deployed oddballs.
    b_somewhere = analysis_b.servers_above_somewhere(0.5)
    assert b_somewhere <= truth.not_ect_blocked | truth.phoenix
    assert len(b_somewhere) <= 3


def test_figure3_transient_outnumber_persistent(bench_study):
    """§4.1: 'around 4x more servers that are transiently unreachable'."""
    analysis = DifferentialAnalysis(bench_study, "plain-only")
    persistent, transient = transient_vs_persistent(analysis)
    assert len(transient) >= 2 * len(persistent)


def test_figure3_phoenix_visible_from_ec2_only(bench_study, bench_world):
    """Paper: the pair "seem to be affected in the traces taken from
    EC2 only" — spikes appear from EC2 vantages, never from the homes
    or campus."""
    from repro.scenario.vantages import ec2_vantages

    analysis_b = DifferentialAnalysis(bench_study, "ect-only")
    ec2_spikes: set[int] = set()
    for spec in ec2_vantages():
        ec2_spikes |= analysis_b.servers_above(0.5, spec.key)
    phoenix = bench_world.ground_truth.phoenix
    assert phoenix <= ec2_spikes
    for key in ("perkins-home", "mcquistin-home", "ugla-wired", "ugla-wireless"):
        assert not (phoenix & analysis_b.servers_above(0.5, key))
