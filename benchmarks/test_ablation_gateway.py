"""Ablation — the McQuistin-home anomaly is the gateway, causally.

§4.1 observes one vantage with dramatically worse ECT(0) reachability
and *hypothesises* home-gateway equipment that treats the ECN bits as
TOS and preferentially drops marked UDP.  The paper cannot test the
hypothesis; the simulator can: remove exactly that middlebox from the
vantage and re-measure.  The anomaly must vanish — and the vantage
must become statistically indistinguishable from the clean home.
"""

import dataclasses

from repro.core.measurement import MeasurementApplication
from repro.scenario.internet import SyntheticInternet
from repro.scenario.parameters import scaled_params

SCALE = 0.06
SEED = 424


def _vantage_pct_a(world, vantage_key):
    app = MeasurementApplication(world)
    trace = app.run_trace(vantage_key, trace_id=0, batch=1)
    return trace.pct_ect_given_plain()


def test_removing_gateway_dropper_cures_the_anomaly(benchmark):
    def run_ablation():
        with_gateway = SyntheticInternet(scaled_params(SCALE, seed=SEED))
        broken = _vantage_pct_a(with_gateway, "mcquistin-home")
        reference = _vantage_pct_a(with_gateway, "perkins-home")

        cured_world = SyntheticInternet(scaled_params(SCALE, seed=SEED))
        host = cured_world.vantage_hosts["mcquistin-home"]
        host.outbound_filters.clear()  # the hypothesised culprit
        cured = _vantage_pct_a(cured_world, "mcquistin-home")
        return broken, reference, cured

    broken, reference, cured = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print(
        f"\nFig 2a at McQuistin home: with gateway {broken:.2f}%, "
        f"without {cured:.2f}% (Perkins reference {reference:.2f}%)"
    )

    # The anomaly is large with the gateway in place...
    assert broken < reference - 2.0
    # ...and disappears without it: the vantage matches the clean home
    # to within trace noise.
    assert abs(cured - reference) < 2.0
    assert cured > broken + 2.0


def test_congestion_alone_does_not_explain_it():
    """Keeping the congested uplink but removing the ECT-specific
    dropper still cures the *differential* — congestion hurts both
    markings equally, as §4.1's reasoning requires."""
    world = SyntheticInternet(scaled_params(SCALE, seed=SEED))
    host = world.vantage_hosts["mcquistin-home"]
    host.outbound_filters.clear()
    assert host.access.upstream_aqm is not None  # congestion still there
    app = MeasurementApplication(world)
    trace = app.run_trace("mcquistin-home", trace_id=0, batch=1)
    # Absolute reachability still suffers from congestion...
    reachable_fraction = trace.count_udp_plain() / len(world.servers)
    assert reachable_fraction < 0.97
    # ...but ECT(0) is no longer preferentially penalised.
    assert trace.pct_ect_given_plain() > 95.0
