"""Experiment F4 — Figure 4 / §4.2: where ECT marks are stripped.

Benchmarks the traceroute campaign from one vantage (the per-source
unit of Figure 4) and regenerates the §4.2 statistics from the full
campaign: the overwhelming majority of hops pass ECT(0) unmodified
(paper: ~98 %), strips are few and scattered with a sometimes-strip
minority (paper: 1143 locations, 125 sometimes), and strip locations
concentrate at AS boundaries (paper: 59.1 %).
"""

from repro.core.analysis.pathanalysis import analyze_campaign
from repro.reporting.report import render_figure4


def test_figure4_single_vantage_campaign(benchmark, bench_world, bench_app):
    targets = [s.addr for s in bench_world.servers]

    campaign = benchmark.pedantic(
        bench_app.run_traceroutes,
        kwargs={"vantage_keys": ["ec2-virginia"], "targets": targets},
        rounds=1,
        iterations=1,
    )
    assert len(campaign) == len(targets)
    # Nearly every path elicits multiple responding hops.
    responding = [len(p.responding_hops()) for p in campaign]
    assert sum(1 for n in responding if n >= 3) > 0.9 * len(responding)


def test_figure4_statistics(benchmark, bench_world, bench_campaign):
    analysis = benchmark.pedantic(
        analyze_campaign,
        args=(bench_campaign, bench_world.noisy_as_map),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_figure4(bench_campaign, analysis))

    # Abstract: ~98 % of hops pass the mark unmodified.
    assert analysis.pct_hops_passing > 90.0
    assert analysis.strip_events > 0

    # Strip locations are few relative to all observed responders.
    responders = {hop.responder for hop in analysis.hops}
    assert len(analysis.strip_locations()) < 0.2 * len(responders)

    # A minority of strip locations only sometimes strips (paper:
    # 125 of 1143).
    sometimes = analysis.sometimes_strip_locations()
    assert len(sometimes) < max(2, len(analysis.strip_locations()))

    # Strip locations concentrate at AS boundaries (paper: 59.1 %).
    fraction, boundary, determinate = analysis.boundary_strip_fraction()
    assert determinate > 0
    assert fraction > 0.3

    # Broad AS coverage, as in the paper's 1400 ASes.
    assert len(analysis.ases_observed()) > 20

    # §4.2: "In all cases, observed changes to the ECN field were to
    # set it to not-ECT. We did not see any ECN-CE marks."
    from repro.netsim.ecn import ECN

    for path in bench_campaign:
        for hop in path.hops:
            assert hop.quoted_ecn != int(ECN.CE)


def test_figure4_strips_not_near_the_sender(bench_world, bench_campaign):
    """Paper: strip regions are 'not located near the sender'."""
    analysis = analyze_campaign(bench_campaign, bench_world.as_map)
    vantage_asns = {info.asn for info in bench_world.vantage_as.values()}
    transit_asns = {info.asn for info in bench_world.transit_as}
    for hop in analysis.hops:
        if hop.status == "strip":
            assert hop.asn not in vantage_asns
            assert hop.asn not in transit_asns
            assert hop.ttl >= 3
