"""Experiment T1 — Table 1: geographic distribution of pool servers.

Regenerates the table by running the discovery script against the
simulated round-robin DNS and classifying every discovered address
through the GeoLite2-style database, then checks the paper's shape:
Europe dominates, followed by North America, then Asia, with a tiny
Unknown remainder.
"""

import pytest

from repro.core.analysis.geographic import analyze_geography
from repro.core.discovery import PoolDiscovery
from repro.geo.regions import Region
from repro.reporting.report import render_table1


def test_table1_discovery_and_classification(benchmark, bench_world):
    world = bench_world

    def regenerate():
        discovery = PoolDiscovery(
            world.vantage_hosts["ugla-wired"],
            world.dns_addr,
            world.pool.zone_names(),
        )
        report = discovery.run(until_stable_sweeps=2)
        return report, analyze_geography(report.addresses, world.geo)

    report, distribution = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    print()
    print(render_table1(distribution))

    # Discovery enumerates the pool.
    assert len(report) == len(world.servers)
    # Table 1 shape: Europe >> North America > Asia > the rest.
    assert distribution.count(Region.EUROPE) > 3 * distribution.count(
        Region.NORTH_AMERICA
    ) * 0.8
    assert distribution.count(Region.NORTH_AMERICA) > distribution.count(Region.ASIA)
    assert distribution.count(Region.ASIA) > distribution.count(Region.AUSTRALIA)
    assert distribution.count(Region.UNKNOWN) <= 2
    assert distribution.total == len(world.servers)


def test_table1_region_proportions_match_paper(bench_world):
    """Region proportions track Table 1 within rounding at this scale."""
    from repro.geo.regions import PAPER_REGION_COUNTS, PAPER_TOTAL_SERVERS

    world = bench_world
    distribution = analyze_geography([s.addr for s in world.servers], world.geo)
    for region, paper_count in PAPER_REGION_COUNTS.items():
        paper_share = paper_count / PAPER_TOTAL_SERVERS
        here_share = distribution.count(region) / distribution.total
        assert here_share == pytest.approx(paper_share, abs=0.03), region
