"""Ablation — the paper's 5-retransmission probe policy (§3).

The methodology retries each NTP request up to five times "to
compensate for packet loss".  This ablation regenerates one trace's
UDP measurements at 1, 3, and 5 attempts and shows what the policy
buys: the false-unreachable rate falls monotonically with the retry
budget, and at five attempts residual false negatives are rare —
supporting the paper's claim that persistent ECN blocking, not
transient loss, dominates what remains.
"""

import pytest

from repro.core.probes import probe_udp
from repro.netsim.ecn import ECN


@pytest.mark.parametrize("attempts", [1, 3, 5])
def test_retry_budget_reduces_false_unreachable(
    benchmark, bench_world, attempts
):
    world = bench_world
    truth = world.ground_truth
    # Probe from the lossiest vantage, against servers that are
    # definitely online and unblocked: any failure is a false negative.
    world.enter_batch(1)
    host = world.vantage_hosts["mcquistin-home"]
    special = (
        truth.udp_ect_blocked
        | truth.any_ect_blocked
        | truth.flaky_ect_blocked
        | truth.not_ect_blocked
        | truth.phoenix
        | truth.offline_batch1
    )
    targets = [s.addr for s in world.servers if s.addr not in special][:60]

    def run_probes():
        failures = 0
        for addr in targets:
            result = probe_udp(host, addr, ECN.NOT_ECT, attempts=attempts)
            if not result.responded:
                failures += 1
        return failures

    failures = benchmark.pedantic(run_probes, rounds=1, iterations=1)
    rate = failures / len(targets)
    print(f"\nattempts={attempts}: false-unreachable rate {rate:.1%}")
    # With the paper's full budget, false negatives are (nearly) gone.
    if attempts == 5:
        assert rate < 0.05
    # Even a single attempt mostly succeeds on this access network.
    assert rate < 0.30


def test_retry_budget_monotone(bench_world):
    """The false-unreachable rate is monotone in the retry budget."""
    world = bench_world
    world.enter_batch(1)
    truth = world.ground_truth
    host = world.vantage_hosts["ugla-wireless"]
    special = (
        truth.udp_ect_blocked
        | truth.any_ect_blocked
        | truth.flaky_ect_blocked
        | truth.not_ect_blocked
        | truth.phoenix
        | truth.offline_batch1
    )
    targets = [s.addr for s in world.servers if s.addr not in special][:50]
    rates = []
    for attempts in (1, 3, 5):
        failures = sum(
            not probe_udp(host, addr, ECN.ECT_0, attempts=attempts).responded
            for addr in targets
        )
        rates.append(failures / len(targets))
    assert rates[0] >= rates[1] >= rates[2]
