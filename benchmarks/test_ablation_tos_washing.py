"""Ablation — distinguishing ECN bleaching from legacy TOS washing.

§4.1 hypothesises that some differential reachability comes from
"routers treating the ECN bits as part of the type-of-service field".
A tracebox-style header diff (after Detal et al., the paper's [2]) can
separate the two behaviours: an ECN-specific bleacher clears only the
low two TOS bits, a TOS washer zeroes the DSCP too.  This bench
deploys one TOS washer into an otherwise calibrated Internet and
shows the classifier attributing every flagged path correctly.
"""

import dataclasses

from repro.core.tracebox import run_tracebox
from repro.netsim.middlebox import TOSBleacher
from repro.scenario.internet import SyntheticInternet
from repro.scenario.parameters import scaled_params


def test_tracebox_separates_washers_from_bleachers(benchmark):
    world = SyntheticInternet(scaled_params(0.05, seed=31))
    truth = world.ground_truth

    # Deploy a TOS washer in a stub AS that currently has no bleacher.
    bleached_asns = {
        world.topology.routers[r].asn for r in truth.bleacher_routers
    }
    washer_as = next(
        info
        for infos in world.stub_as.values()
        for info in infos
        if info.asn not in bleached_asns
        and any(s.asn == info.asn for s in world.servers)
    )
    washer_router = washer_as.border_router_ids[0]
    world.topology.routers[washer_router].add_middlebox(TOSBleacher())

    host = world.vantage_hosts["ugla-wired"]
    targets = [s.addr for s in world.servers][:80]

    def classify_paths():
        verdicts = {}
        for addr in targets:
            result = run_tracebox(host, addr, dscp=8, params=world.params.probes)
            verdicts[addr] = result.classify_tos_interference()
        return verdicts

    verdicts = benchmark.pedantic(classify_paths, rounds=1, iterations=1)

    washed = [a for a, v in verdicts.items() if v == "tos-washing"]
    ecn_only = [a for a, v in verdicts.items() if v == "ecn-specific"]
    clean = [a for a, v in verdicts.items() if v == "clean"]
    print(
        f"\npaths: {len(clean)} clean, {len(ecn_only)} ecn-specific, "
        f"{len(washed)} tos-washing"
    )

    # Every tos-washing verdict points at the washer's AS.
    for addr in washed:
        server = world.server_by_addr(addr)
        assert server.asn == washer_as.asn
    # Servers behind the washer that we probed are all flagged.
    behind_washer = [a for a in targets
                     if world.server_by_addr(a).asn == washer_as.asn]
    if behind_washer:
        assert set(washed) == set(behind_washer)
    # The pre-existing ECN bleachers are never misclassified as washers.
    for addr in ecn_only:
        assert world.server_by_addr(addr).asn in bleached_asns
    assert clean
