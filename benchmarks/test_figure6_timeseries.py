"""Experiment F6 — Figure 6: trends in ECN TCP capability.

Regenerates the deployment time series (Medina 2000 → Trammell 2014
plus our measured point) with a logistic trend fit, asserting the
paper's reading: the 2015 measurement shows 'a significant increase in
willingness to negotiate ECN ... but on a growth curve that looks to
be in line with previous results'.
"""

from repro.core.analysis.tcp_ecn import (
    HISTORICAL_STUDIES,
    MEASUREMENT_YEAR,
    analyze_tcp_ecn,
    ecn_deployment_series,
    fit_deployment_trend,
)
from repro.reporting.report import render_figure6


def test_figure6_series_and_fit(benchmark, bench_study):
    summary = analyze_tcp_ecn(bench_study)

    def regenerate():
        series = ecn_deployment_series(summary.pct_negotiated)
        fit = fit_deployment_trend()
        return series, fit

    series, fit = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print()
    print(render_figure6(summary.pct_negotiated))

    # The series carries all the prior studies plus our point.
    assert len(series) == len(HISTORICAL_STUDIES) + 1
    assert series[-1].label == "measured"

    # Significant increase over the most recent prior study
    # (Trammell 2014: 56.17 %)...
    assert summary.pct_negotiated > 56.17

    # ...but consistent with the growth curve: above the
    # extrapolation, within a moderate band.
    residual = fit.residual(MEASUREMENT_YEAR, summary.pct_negotiated)
    assert 0 < residual < 35

    # And the curve itself is a sane adoption fit of the history.
    assert fit.rmse < 6.0
    assert fit.predict(2015.5) > fit.predict(2010.0) > fit.predict(2004.0)


def test_figure6_history_values_match_cited_studies():
    """The encoded points match the numbers cited in §4.3/§5."""
    by_label = {}
    for point in HISTORICAL_STUDIES:
        by_label.setdefault(point.label, []).append(point.pct_negotiated)
    assert by_label["Trammell"] == [56.17]
    assert sorted(by_label["Kuhlewind"]) == [25.16, 29.48]
    assert by_label["Bauer"] == [17.2]
    assert all(v <= 1.5 for v in by_label["Medina"])
    assert by_label["Langley"] == [1.0]
