"""Experiment F5 — Figure 5 / §4.3: TCP reachability and ECN negotiation.

Regenerates the per-trace web-server reachability and ECN negotiation
counts and asserts the paper's shape: far fewer hosts answer HTTP than
NTP (paper: 1334 vs 2253), negotiation succeeds for ~82 % of the
TCP-reachable, and reachability varies little between traces.
"""

from repro.core.analysis.reachability import analyze_reachability
from repro.core.analysis.tcp_ecn import analyze_tcp_ecn
from repro.reporting.report import render_figure5


def test_figure5_series(benchmark, bench_study, bench_world):
    summary = benchmark.pedantic(
        analyze_tcp_ecn, args=(bench_study,), rounds=3, iterations=1
    )
    print()
    print(render_figure5(summary))

    # Paper: 82.0 % of TCP-reachable servers negotiate ECN.
    assert 74.0 < summary.pct_negotiated < 90.0

    # Paper: 1334 of 2500 hosts run (reachable) web servers.
    fraction = summary.avg_tcp_reachable / len(bench_world.servers)
    assert 0.40 < fraction < 0.60

    # Paper: 'there is little variation in reachability between traces'.
    counts = [t.tcp_reachable for t in summary.per_trace]
    assert max(counts) - min(counts) <= max(3, 0.05 * summary.avg_tcp_reachable)


def test_figure5_tcp_well_below_udp(bench_study):
    """Paper: 'significantly less than the 2253 servers reachable
    using UDP'."""
    tcp = analyze_tcp_ecn(bench_study)
    udp = analyze_reachability(bench_study)
    assert tcp.avg_tcp_reachable < 0.7 * udp.avg_udp_plain


def test_figure5_negotiators_match_deployment(bench_study, bench_world):
    """Negotiation counts trace back to the deployed policy mix."""
    from repro.tcp.connection import ECNServerPolicy

    summary = analyze_tcp_ecn(bench_study)
    deployed_negotiators = sum(
        1
        for s in bench_world.servers
        if s.web_policy is ECNServerPolicy.NEGOTIATE
    )
    # Averaged over traces, negotiation is bounded by deployment and
    # approaches it (offline hosts account for the gap).
    assert summary.avg_ecn_negotiated <= deployed_negotiators
    assert summary.avg_ecn_negotiated > 0.8 * deployed_negotiators
