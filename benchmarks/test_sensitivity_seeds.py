"""Robustness — the conclusions are not artefacts of one random world.

Builds three independently seeded synthetic Internets, measures each
with a single-vantage trace, and checks that every headline conclusion
holds in all of them with low variance: the reproduction's claims are
properties of the calibrated *rates*, not of one lucky topology.
"""

from repro.core.analysis.reachability import analyze_reachability
from repro.core.analysis.tcp_ecn import analyze_tcp_ecn
from repro.core.measurement import MeasurementApplication
from repro.core.traces import TraceSet
from repro.scenario.internet import SyntheticInternet
from repro.scenario.parameters import scaled_params
from repro.stats.summaries import mean, stdev

SEEDS = (11, 2718, 31459)
SCALE = 0.05


def _one_trace_study(seed: int):
    world = SyntheticInternet(scaled_params(SCALE, seed=seed))
    app = MeasurementApplication(world)
    trace_set = TraceSet(server_addrs=list(app.targets))
    trace_set.add(app.run_trace("ec2-ireland", trace_id=0, batch=1))
    trace_set.add(app.run_trace("perkins-home", trace_id=1, batch=1))
    return world, trace_set


def test_headlines_stable_across_seeds(benchmark):
    def run_all():
        results = []
        for seed in SEEDS:
            world, trace_set = _one_trace_study(seed)
            reach = analyze_reachability(trace_set)
            tcp = analyze_tcp_ecn(trace_set)
            results.append(
                (
                    reach.avg_pct_ect_given_plain,
                    reach.avg_udp_plain / reach.total_servers,
                    tcp.pct_negotiated,
                )
            )
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    pct_a = [r[0] for r in results]
    reachable_frac = [r[1] for r in results]
    pct_neg = [r[2] for r in results]
    print(
        f"\nseeds {SEEDS}: 2a={['%.2f' % v for v in pct_a]}, "
        f"reach={['%.2f' % v for v in reachable_frac]}, "
        f"neg={['%.1f' % v for v in pct_neg]}"
    )

    # Every conclusion holds in every world...
    for a, frac, neg in results:
        assert a > 93.0
        assert 0.80 < frac < 0.97
        assert 74.0 < neg < 90.0
    # ...with low cross-seed variance.
    assert stdev(pct_a) < 2.0
    assert stdev(pct_neg) < 4.0
    assert mean(reachable_frac) > 0.85
