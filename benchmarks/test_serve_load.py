"""Study server under load — many tenants, one shared worker pool.

Drives a real ``StudyServer`` over real sockets with 50 concurrent
study submissions from four tenants, mixing three distinct
``(scale, seed)`` pairs so the world cache sees both hits and misses.
Asserts the service contract end to end:

* every admitted study completes and its archive is **bit-identical**
  to a direct ``Study.run(...).save(...)`` of the same parameters —
  multiplexing studies over the shared pool must not perturb results;
* a deliberately tiny second server saturates honestly: the excess
  submission is refused with ``429`` and a ``Retry-After`` hint rather
  than queued into an unbounded backlog.

The printed artefact is aggregate throughput (studies/second).  At
these scales study bodies are pure-Python and GIL-bound, so the honest
wall-clock claim is about *overhead*, not speedup: draining 50 studies
through the scheduler must cost at most a modest factor over running
the same plan back to back (measured in-process, so the bound is
self-calibrating rather than machine-dependent).
"""

from __future__ import annotations

import asyncio
import json
import sys
import time
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tests" / "serve"))
from serve_client import request_json, wait_idle  # noqa: E402

from repro.serve.server import ServeConfig, StudyServer  # noqa: E402
from repro.study import Study  # noqa: E402

pytestmark = pytest.mark.slow

STUDIES = 50
TENANTS = ("alice", "bob", "carol", "dave")
# Three parameter points: duplicates across tenants exercise world-cache
# reuse, distinct seeds prove results are keyed on params, not tenants.
PARAMS = ((0.002, 3), (0.002, 5), (0.003, 3))
ARTIFACTS = ("manifest.json", "traces.json", "traceroutes.json",
             "summary.json", "report.txt")


def test_fifty_studies_across_tenants(tmp_path):
    data_dir = tmp_path / "results"
    plan = [
        (TENANTS[i % len(TENANTS)], *PARAMS[i % len(PARAMS)])
        for i in range(STUDIES)
    ]

    # Direct reference runs, timed: they are both the bit-identity
    # baseline and the sequential cost model for the overhead bound.
    baselines, per_study = {}, {}
    for scale, seed in PARAMS:
        reference = tmp_path / f"direct-{scale}-{seed}"
        t0 = time.perf_counter()
        Study.run(scale=scale, seed=seed).save(reference)
        per_study[(scale, seed)] = time.perf_counter() - t0
        baselines[(scale, seed)] = {
            name: (reference / name).read_bytes() for name in ARTIFACTS
        }
    sequential_estimate = sum(per_study[(s, d)] for _, s, d in plan)

    async def drive():
        server = StudyServer(ServeConfig(
            port=0,
            workers=0,
            queue_depth=STUDIES,
            tenant_quota=STUDIES,
            max_concurrent=4,
            data_dir=str(data_dir),
        ))
        await server.start()
        try:
            port = server.port
            started = time.perf_counter()
            runs = []
            for tenant, scale, seed in plan:
                status, _, accepted = await request_json(
                    port, "POST", "/studies",
                    {"scale": scale, "seed": seed, "tenant": tenant},
                )
                assert status == 202, accepted
                runs.append((accepted["run_id"], scale, seed))
            await wait_idle(server, timeout=600.0)
            elapsed = time.perf_counter() - started

            _, _, listing = await request_json(port, "GET", "/studies")
            by_id = {entry["run_id"]: entry for entry in listing["studies"]}
            for run_id, _, _ in runs:
                assert by_id[run_id]["status"] == "complete", by_id[run_id]

            _, _, metrics = await request_json(port, "GET", "/metrics")
            return runs, elapsed, metrics
        finally:
            await server.shutdown()

    runs, elapsed, metrics = asyncio.run(drive())
    assert len({run_id for run_id, _, _ in runs}) == STUDIES

    # Bit-identity: every served archive must match the direct
    # reference save for its parameter point, byte for byte.
    for run_id, scale, seed in runs:
        for name in ARTIFACTS:
            assert (data_dir / run_id / name).read_bytes() == \
                baselines[(scale, seed)][name], (
                    f"{run_id}/{name} diverged from direct run"
                )

    # The cache saw each parameter point at most a handful of times
    # (entries can be evicted and rebuilt); most lookups were hits.
    counters = metrics["metrics"]["counters"]
    assert counters["serve.world_cache.hits"] >= STUDIES - 2 * len(PARAMS)
    assert metrics["queue"]["admitted"] == STUDIES
    assert metrics["queue"]["rejected_full"] == 0

    rate = STUDIES / elapsed
    print(f"\n{STUDIES} studies, {len(TENANTS)} tenants: "
          f"{elapsed:.1f}s ({rate:.1f} studies/s; "
          f"sequential estimate {sequential_estimate:.1f}s)")
    # The scheduler's overhead bound: admission, progress streaming,
    # indexing and thread hand-offs must stay a small tax on top of the
    # study bodies themselves (which are GIL-bound at this scale).
    assert elapsed < sequential_estimate * 1.5, (
        f"scheduler overhead blew up: {elapsed:.1f}s for an estimated "
        f"{sequential_estimate:.1f}s of study work"
    )


def test_saturation_refuses_with_retry_after(tmp_path):
    async def drive():
        server = StudyServer(ServeConfig(
            port=0,
            workers=0,
            queue_depth=2,
            tenant_quota=8,
            max_concurrent=1,
            data_dir=str(tmp_path / "tiny"),
        ))
        await server.start()
        try:
            port = server.port
            body = {"scale": 0.002, "seed": 3, "tenant": "alice"}
            # Occupy the single run slot, then fill the queue.
            _, _, first = await request_json(port, "POST", "/studies", body)
            deadline = asyncio.get_running_loop().time() + 30
            while server.queue.running_count < 1:
                assert asyncio.get_running_loop().time() < deadline
                await asyncio.sleep(0.01)
            for _ in range(2):
                status, _, _ = await request_json(port, "POST", "/studies", body)
                assert status == 202
            status, headers, refused = await request_json(
                port, "POST", "/studies", body
            )
            assert status == 429, refused
            assert float(headers["retry-after"]) >= 1.0
            assert "queue" in refused["error"]
            await wait_idle(server, timeout=120.0)
        finally:
            await server.shutdown()

    asyncio.run(drive())
