"""Ablation — probing with ECT(1) instead of ECT(0).

§3 notes the study probes with ECT(0) "to match the typical marking
used with ECN for TCP"; RFC 3168 defines the two codepoints as
equivalent.  This ablation repeats a trace's UDP-with-ECN measurement
using ECT(1) and shows that, against middleboxes that match on "any
ECT codepoint" (all of ours, as deployed gear typically does), the
choice of codepoint does not change the result — supporting the
paper's use of a single codepoint.
"""

from repro.core.probes import probe_udp
from repro.netsim.ecn import ECN


def test_ect1_equivalent_to_ect0(benchmark, bench_world):
    world = bench_world
    world.enter_batch(1)
    host = world.vantage_hosts["ec2-frankfurt"]
    targets = [s.addr for s in world.servers][:80]

    def probe_both():
        disagreements = 0
        reachable_ect0 = 0
        for addr in targets:
            ect0 = probe_udp(host, addr, ECN.ECT_0, attempts=3).responded
            ect1 = probe_udp(host, addr, ECN.ECT_1, attempts=3).responded
            reachable_ect0 += ect0
            if ect0 != ect1:
                disagreements += 1
        return reachable_ect0, disagreements

    reachable, disagreements = benchmark.pedantic(probe_both, rounds=1, iterations=1)
    print(f"\nECT(0) reachable: {reachable}/{len(targets)}; "
          f"ECT(0)/ECT(1) disagreements: {disagreements}")
    # Equivalent codepoints: only transient loss can make them differ.
    assert reachable > 0.7 * len(targets)
    assert disagreements <= 0.05 * len(targets)


def test_blocked_servers_block_both_codepoints(bench_world):
    world = bench_world
    world.enter_batch(1)
    host = world.vantage_hosts["ec2-frankfurt"]
    for addr in sorted(world.ground_truth.udp_ect_blocked):
        assert not probe_udp(host, addr, ECN.ECT_0, attempts=2).responded
        assert not probe_udp(host, addr, ECN.ECT_1, attempts=2).responded
        assert probe_udp(host, addr, ECN.NOT_ECT, attempts=3).responded
