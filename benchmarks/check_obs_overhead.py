"""CI gate: observability must be cheap when it is switched off.

The :mod:`repro.obs` layer promises that disabled instrumentation
costs one falsey-predicate per call site.  A build cannot time itself
against a hypothetical uninstrumented twin, so this check pins the
contract from the other side: it times the same small sequential study
with observability **disabled** and **enabled**, three runs each, and
compares best-of-three wall clocks.

If the disabled runs are more than ``--budget`` (default 5 %) slower
than the enabled ones, the gating is broken or inverted — a disabled
registry is doing real work — and the check fails.  The enabled-mode
cost is reported for the record but not gated: counting ~1.5 M events
is allowed to cost something.

Usage::

    PYTHONPATH=src python benchmarks/check_obs_overhead.py [--scale 0.03]
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.study import Study


def best_of(runs: int, scale: float, seed: int, collect_metrics: bool) -> float:
    timings = []
    for _ in range(runs):
        started = time.perf_counter()
        Study.run(scale=scale, seed=seed, collect_metrics=collect_metrics)
        timings.append(time.perf_counter() - started)
    return min(timings)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.03)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--runs", type=int, default=3)
    parser.add_argument(
        "--budget",
        type=float,
        default=0.05,
        help="max tolerated disabled-vs-enabled slowdown (fraction)",
    )
    args = parser.parse_args(argv)

    disabled = best_of(args.runs, args.scale, args.seed, collect_metrics=False)
    enabled = best_of(args.runs, args.scale, args.seed, collect_metrics=True)
    overhead = disabled / enabled - 1.0
    print(
        f"scale={args.scale} runs={args.runs}: "
        f"disabled best {disabled:.2f}s, enabled best {enabled:.2f}s"
    )
    print(
        f"disabled-mode overhead vs enabled: {overhead:+.1%} "
        f"(budget {args.budget:.0%}); enabled-mode cost: "
        f"{enabled / disabled - 1.0:+.1%}"
    )
    if overhead > args.budget:
        print(
            "FAIL: a study with observability disabled ran slower than one "
            "with it enabled — the truthiness gate is not cheap when off",
            file=sys.stderr,
        )
        return 1
    print("OK: disabled observability is within budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
