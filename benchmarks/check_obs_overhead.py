"""CI gate: observability must be cheap when off, spans cheap when on.

The :mod:`repro.obs` layer promises that disabled instrumentation
costs one falsey-predicate per call site.  A build cannot time itself
against a hypothetical uninstrumented twin, so this check pins the
contract from the other side: it times the same small sequential study
with observability **disabled** and **enabled**, three runs each, and
compares best-of-three wall clocks.

If the disabled runs are more than ``--budget`` (default 5 %) slower
than the enabled ones, the gating is broken or inverted — a disabled
registry is doing real work — and the check fails.  The enabled-mode
cost is reported for the record but not gated: counting ~1.5 M events
is allowed to cost something.

Span recording gets its own gate: epoch-detail spans touch one context
switch and one span per measurement epoch, so turning them on must
cost at most ``--span-budget`` (default 5 %) over a spans-off run.

The structured event log gets the same treatment: events touch one
context switch per epoch plus a handful of emissions per shard, so
``collect_events=True`` must cost at most ``--event-budget`` (default
5 %) over an events-off run.

Usage::

    PYTHONPATH=src python benchmarks/check_obs_overhead.py [--scale 0.03]
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.study import Study


def write_step_summary(title: str, headers: list[str], rows: list[list[str]]) -> None:
    """Append a markdown table to the CI job's step summary, if any.

    Same contract as the regression gate's helper: unset
    ``$GITHUB_STEP_SUMMARY`` (local runs) makes this a no-op.
    """
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not summary_path or not rows:
        return
    lines = [
        f"### {title}",
        "",
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    lines.append("")
    with open(summary_path, "a") as handle:
        handle.write("\n".join(lines) + "\n")


def best_of(
    runs: int,
    scale: float,
    seed: int,
    collect_metrics: bool,
    record_spans: bool = False,
    collect_events: bool = False,
) -> float:
    timings = []
    for _ in range(runs):
        started = time.perf_counter()
        Study.run(
            scale=scale,
            seed=seed,
            collect_metrics=collect_metrics,
            record_spans=record_spans,
            collect_events=collect_events,
        )
        timings.append(time.perf_counter() - started)
    return min(timings)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.03)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--runs", type=int, default=3)
    parser.add_argument(
        "--budget",
        type=float,
        default=0.05,
        help="max tolerated disabled-vs-enabled slowdown (fraction)",
    )
    parser.add_argument(
        "--span-budget",
        type=float,
        default=0.05,
        help="max tolerated cost of epoch-detail span recording (fraction)",
    )
    parser.add_argument(
        "--event-budget",
        type=float,
        default=0.05,
        help="max tolerated cost of structured event logging (fraction)",
    )
    args = parser.parse_args(argv)

    disabled = best_of(args.runs, args.scale, args.seed, collect_metrics=False)
    enabled = best_of(args.runs, args.scale, args.seed, collect_metrics=True)
    overhead = disabled / enabled - 1.0
    print(
        f"scale={args.scale} runs={args.runs}: "
        f"disabled best {disabled:.2f}s, enabled best {enabled:.2f}s"
    )
    print(
        f"disabled-mode overhead vs enabled: {overhead:+.1%} "
        f"(budget {args.budget:.0%}); enabled-mode cost: "
        f"{enabled / disabled - 1.0:+.1%}"
    )
    failed = False
    if overhead > args.budget:
        print(
            "FAIL: a study with observability disabled ran slower than one "
            "with it enabled — the truthiness gate is not cheap when off",
            file=sys.stderr,
        )
        failed = True

    spans_on = best_of(
        args.runs, args.scale, args.seed, collect_metrics=False, record_spans=True
    )
    span_overhead = spans_on / disabled - 1.0
    print(
        f"span recording (epoch detail) best {spans_on:.2f}s; "
        f"overhead vs spans-off: {span_overhead:+.1%} "
        f"(budget {args.span_budget:.0%})"
    )
    if span_overhead > args.span_budget:
        print(
            "FAIL: epoch-detail span recording costs more than its budget — "
            "the recorder is doing per-packet-scale work on the epoch path",
            file=sys.stderr,
        )
        failed = True

    events_on = best_of(
        args.runs, args.scale, args.seed, collect_metrics=False, collect_events=True
    )
    event_overhead = events_on / disabled - 1.0
    print(
        f"event logging best {events_on:.2f}s; "
        f"overhead vs events-off: {event_overhead:+.1%} "
        f"(budget {args.event_budget:.0%})"
    )
    if event_overhead > args.event_budget:
        print(
            "FAIL: structured event logging costs more than its budget — "
            "emission is doing per-packet-scale work on the epoch path",
            file=sys.stderr,
        )
        failed = True

    write_step_summary(
        f"Observability overhead (scale={args.scale}, best of {args.runs})",
        ["configuration", "best (s)", "overhead vs reference", "budget", "verdict"],
        [
            [
                "metrics disabled (reference: enabled)",
                f"{disabled:.2f}",
                f"{overhead:+.1%}",
                f"{args.budget:.0%}",
                "FAIL" if overhead > args.budget else "ok",
            ],
            [
                "metrics enabled (informational)",
                f"{enabled:.2f}",
                f"{enabled / disabled - 1.0:+.1%}",
                "-",
                "-",
            ],
            [
                "spans on, epoch detail (reference: spans off)",
                f"{spans_on:.2f}",
                f"{span_overhead:+.1%}",
                f"{args.span_budget:.0%}",
                "FAIL" if span_overhead > args.span_budget else "ok",
            ],
            [
                "events on (reference: events off)",
                f"{events_on:.2f}",
                f"{event_overhead:+.1%}",
                f"{args.event_budget:.0%}",
                "FAIL" if event_overhead > args.event_budget else "ok",
            ],
        ],
    )
    if failed:
        return 1
    print("OK: disabled observability, spans, and events are within budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
