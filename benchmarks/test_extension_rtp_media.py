"""Extension experiment — the §1 motivation, quantified.

The paper's introduction argues ECN matters for interactive media
because "the ability to react to congestion without packet loss
avoids visible disruption to the video".  This bench runs the RTP +
NADA media stack (RFC 6679-style feedback) over an identical RED
bottleneck twice — ECN-capable and drop-only — and measures the claim:
the ECN run converts congestion losses into CE marks.
"""

from repro.netsim.buffered import buffered_pair
from repro.netsim.host import Host
from repro.netsim.ipv4 import parse_addr
from repro.netsim.network import EVENT, Network
from repro.netsim.queues import REDQueue
from repro.netsim.router import Router
from repro.netsim.topology import Topology
from repro.protocols.rtp import NADAController, run_media_session

BOTTLENECK_BPS = 1_000_000


def _bottleneck_session(ecn_capable: bool):
    topo = Topology()
    topo.add_router(Router("r0", asn=1, interface_addr=parse_addr("10.0.0.1")))
    topo.add_router(Router("r1", asn=2, interface_addr=parse_addr("10.0.1.1")))
    red = REDQueue(
        min_threshold=4,
        max_threshold=16,
        max_probability=0.2,
        weight=0.1,
        ecn_capable_queue=ecn_capable,
    )
    forward, backward = buffered_pair(
        "r0", "r1", bandwidth=BOTTLENECK_BPS, delay=0.02, queue_limit=60, red=red
    )
    topo.add_link_pair(forward, backward)
    sender = topo.add_host(Host("sender", parse_addr("192.0.2.1"), "r0"))
    receiver = topo.add_host(Host("receiver", parse_addr("198.51.100.1"), "r1"))
    net = Network(topo, seed=5, mode=EVENT)
    forward.bind_clock(net.scheduler.clock)
    backward.bind_clock(net.scheduler.clock)
    controller = NADAController(initial_rate=1_500_000, min_rate=200_000)
    return run_media_session(sender, receiver, 6000, duration=12.0,
                             controller=controller)


def test_media_over_ecn_vs_drop_bottleneck(benchmark):
    def run_both():
        return _bottleneck_session(True), _bottleneck_session(False)

    (ecn_stats, _), (drop_stats, _) = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )

    ecn_loss = ecn_stats.observed_loss / max(ecn_stats.sent, 1)
    drop_loss = drop_stats.observed_loss / max(drop_stats.sent, 1)
    print(
        f"\nECN bottleneck: loss {ecn_loss:.2%}, CE {ecn_stats.observed_ce}; "
        f"drop bottleneck: loss {drop_loss:.2%}"
    )

    # ECN validated on both paths (marks survive end to end).
    assert ecn_stats.ecn_state == "active"
    # The claim: congestion signalled by marks, not losses.
    assert ecn_stats.observed_ce > 0
    assert drop_stats.observed_ce == 0
    assert ecn_loss < 0.6 * drop_loss
    # Both controllers converged near (or below) the bottleneck rate.
    assert ecn_stats.final_rate < 1_500_000
    assert drop_stats.final_rate < 1_500_000
