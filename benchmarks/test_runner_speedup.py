"""Parallel runner — wall-clock speedup of sharded execution.

Runs the same study sequentially and sharded across four worker
processes, at a fixed (scale, seed), and records both wall-clock
times.  Also re-asserts the determinism contract under the bench
scale: the two runs must be bit-identical, or the speedup number is
meaningless.

Expectations are deliberately loose: shard granularity is
``(vantage, batch)``, so the critical path is the largest shard plus
per-worker world-build cost, and small populations leave limited room.
The test asserts the parallel run is no *slower* than sequential by
more than a small tolerance; the printed ratio is the artefact.
"""

import time

from repro.obs import RunTelemetry
from repro.runner import run_study_parallel
from repro.study import Study

BENCH_SEED = 20150401
SPEEDUP_SCALE = 0.05
WORKERS = 4


def test_sharded_speedup(benchmark):
    def run_both():
        t0 = time.perf_counter()
        sequential = Study.run(scale=SPEEDUP_SCALE, seed=BENCH_SEED)
        t1 = time.perf_counter()
        telemetry = RunTelemetry()
        traces, campaign = run_study_parallel(
            scale=SPEEDUP_SCALE,
            seed=BENCH_SEED,
            workers=WORKERS,
            targets=sequential.traces.server_addrs,
            # Timing only: worker-side metric registries would tax the
            # parallel side of a comparison the sequential side escapes.
            telemetry=telemetry,
            observe=False,
        )
        t2 = time.perf_counter()
        return sequential, traces, campaign, t1 - t0, t2 - t1, telemetry

    sequential, traces, campaign, seq_s, par_s, telemetry = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    ratio = seq_s / par_s if par_s > 0 else float("inf")
    print(
        f"\nsequential {seq_s:.1f}s, workers={WORKERS} {par_s:.1f}s "
        f"(speedup x{ratio:.2f})"
    )
    # Per-shard timing: where the parallel wall-clock actually went.
    for line in telemetry.summary_lines():
        print(line)

    # The speedup claim is only meaningful over identical work.
    assert traces.to_dict() == sequential.traces.to_dict()
    assert campaign.to_dict() == sequential.campaign.to_dict()
    # Sharding must never cost more than it saves on a multi-core box;
    # the tolerance absorbs pool start-up and per-worker world builds.
    assert par_s < seq_s * 1.25
