"""Experiment F1 — Figure 1: world map of server locations.

Regenerates the map point cloud and its text rendering, and checks
that server density mirrors the pool's geography (a dense European
cluster, sparse southern hemisphere).
"""

from repro.core.analysis.geographic import analyze_geography
from repro.geo.regions import Region
from repro.reporting.report import render_figure1


def test_figure1_world_map(benchmark, bench_world):
    world = bench_world
    addrs = [s.addr for s in world.servers]

    def regenerate():
        distribution = analyze_geography(addrs, world.geo)
        return distribution, render_figure1(distribution)

    distribution, text = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print()
    print(text)

    points = distribution.points
    assert len(points) == distribution.total - distribution.count(Region.UNKNOWN)
    # Europe (lat 35..70, lon -10..40) holds the majority of points.
    in_europe = [
        p for p in points if 35 <= p.latitude <= 70 and -10 <= p.longitude <= 40
    ]
    assert len(in_europe) > 0.5 * len(points)
    # Southern hemisphere present but sparse.
    southern = [p for p in points if p.latitude < 0]
    assert 0 < len(southern) < 0.2 * len(points)
