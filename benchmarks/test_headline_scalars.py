"""Experiment §4.1/§4.2/§4.3 — the paper's headline scalars, together.

Regenerates every number quoted in the abstract from one study and
prints the paper-versus-reproduced comparison that EXPERIMENTS.md
records:

* 98.97 % of not-ECT-reachable servers also ECT(0)-reachable;
* 99.45 % for the converse;
* ~98 % of hops pass ECT(0) unmodified;
* 82.0 % of TCP-reachable servers negotiate ECN.
"""

from repro.core.analysis.pathanalysis import analyze_campaign
from repro.core.analysis.reachability import analyze_reachability
from repro.core.analysis.tcp_ecn import analyze_tcp_ecn


def test_headline_scalars(benchmark, bench_world, bench_study, bench_campaign):
    def regenerate():
        return (
            analyze_reachability(bench_study),
            analyze_tcp_ecn(bench_study),
            analyze_campaign(bench_campaign, bench_world.noisy_as_map),
        )

    reach, tcp, paths = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    print()
    print("headline                      paper     reproduced")
    print(f"ECT-given-plain reachability  98.97%    {reach.avg_pct_ect_given_plain:.2f}%")
    print(f"plain-given-ECT reachability  99.45%    {reach.avg_pct_plain_given_ect:.2f}%")
    print(f"hops passing ECT(0)           ~98%      {paths.pct_hops_passing:.2f}%")
    print(f"TCP servers negotiating ECN   82.0%     {tcp.pct_negotiated:.1f}%")

    assert reach.avg_pct_ect_given_plain > 93.0
    assert reach.avg_pct_plain_given_ect > reach.avg_pct_ect_given_plain
    assert paths.pct_hops_passing > 90.0
    assert 74.0 < tcp.pct_negotiated < 90.0

    # The overall ordering the paper's conclusion rests on: persistent
    # ECN damage is the *least* significant reachability problem,
    # behind transient loss and offline servers.
    offline_fraction = 1 - reach.avg_udp_plain / reach.total_servers
    ect_deficit = (100.0 - reach.avg_pct_ect_given_plain) / 100.0
    assert ect_deficit < offline_fraction
