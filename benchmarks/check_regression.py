"""Benchmark regression gate: fail CI when the pipeline gets slower.

Compares a fresh ``pytest --benchmark-json`` run of the gated
benchmarks (``test_headline_scalars``, ``test_runner_speedup``)
against the committed ``BENCH_baseline.json`` and exits non-zero when
any benchmark slowed down by more than the threshold (default 20 %).

Raw wall-clock comparisons across machines are meaningless, so both
the baseline and the check normalise by a **calibration workload**: a
fixed pure-Python loop (dict churn + RNG draws, the same operations
that dominate the simulator) timed on the same interpreter and
machine.  What is compared is the ratio ``benchmark_seconds /
calibration_seconds`` — "how many calibration units does this
benchmark cost" — which is stable across hardware generations to well
within the 20 % budget.

Usage::

    # run the gated benchmarks
    pytest benchmarks/test_headline_scalars.py benchmarks/test_runner_speedup.py \
        --benchmark-json=bench.json

    # gate (CI)
    python benchmarks/check_regression.py --current bench.json

    # refresh the committed baseline (after a deliberate perf change)
    python benchmarks/check_regression.py --current bench.json --update

The gate is two-sided.  A benchmark that got more than 30 % *faster*
than the baseline also fails ("stale baseline"): large unratcheted
improvements leave headroom in which real regressions hide — a 2×
speedup followed by a 1.5× slowdown still reads "ok" against the old
number.  After a deliberate perf change, re-ratchet with ``--update``
and commit the new ``BENCH_baseline.json``.

Environment: ``ECNUDP_BENCH_TOLERANCE`` overrides the slowdown factor
(e.g. ``1.5`` on noisy shared runners); ``ECNUDP_BENCH_STALE_TOLERANCE``
overrides the improvement factor that trips the staleness check
(default ``0.70`` = 30 % faster).
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parent.parent / "BENCH_baseline.json"
DEFAULT_TOLERANCE = 1.20
DEFAULT_STALE_TOLERANCE = 0.70
CALIBRATION_ROUNDS = 5


def calibration_seconds() -> float:
    """Time the fixed calibration workload (best of several rounds).

    Best-of is deliberate: scheduling noise only ever makes a round
    slower, so the minimum is the least noisy estimate of the machine's
    actual speed.
    """
    best = float("inf")
    for _ in range(CALIBRATION_ROUNDS):
        started = time.perf_counter()
        _calibration_workload()
        best = min(best, time.perf_counter() - started)
    return best


def _calibration_workload() -> int:
    # Mirrors the simulator's hot loop profile: RNG draws, small-int
    # arithmetic, dict writes.  Must never change once baselined —
    # treat it like a wire format.
    rng = random.Random(20150401)
    table: dict[int, int] = {}
    acc = 0
    for index in range(400_000):
        value = rng.random()
        acc += int(value * 4096)
        table[index & 2047] = acc
    return acc


def extract_benchmarks(document: dict) -> dict[str, float]:
    """Map benchmark name -> mean seconds from a pytest-benchmark JSON."""
    results = {}
    for entry in document.get("benchmarks", []):
        results[entry["name"]] = float(entry["stats"]["mean"])
    return results


def check(
    current: dict[str, float],
    calibration: float,
    baseline: dict,
    tolerance: float,
    stale_tolerance: float = DEFAULT_STALE_TOLERANCE,
) -> tuple[list[str], list[list[str]]]:
    """Gate the current run; returns ``(failures, table rows)``.

    Failures empty = gate passes.  The rows are the per-benchmark
    deltas (name, baseline units, current units, ratio, verdict) that
    feed both the stdout log and the CI step summary.
    """
    failures = []
    rows: list[list[str]] = []
    base_cal = float(baseline["calibration_seconds"])
    base_marks = baseline["benchmarks"]
    for name, base_seconds in base_marks.items():
        if name not in current:
            failures.append(f"benchmark {name!r} missing from current run")
            rows.append([name, "-", "-", "-", "MISSING"])
            continue
        base_units = float(base_seconds) / base_cal
        now_units = current[name] / calibration
        ratio = now_units / base_units if base_units > 0 else float("inf")
        if ratio > tolerance:
            verdict = "REGRESSION"
        elif ratio < stale_tolerance:
            verdict = "STALE BASELINE"
        else:
            verdict = "ok"
        rows.append(
            [name, f"{base_units:.1f}", f"{now_units:.1f}", f"x{ratio:.2f}", verdict]
        )
        print(
            f"{name}: baseline {base_units:8.1f} units, "
            f"current {now_units:8.1f} units "
            f"(x{ratio:.2f}, budget x{tolerance:.2f}) {verdict}"
        )
        if ratio > tolerance:
            failures.append(
                f"{name} slowed down x{ratio:.2f} "
                f"(budget x{tolerance:.2f})"
            )
        elif ratio < stale_tolerance:
            failures.append(
                f"{name} sped up x{1 / ratio:.2f} but the baseline was not "
                f"ratcheted — rerun with --update and commit "
                f"BENCH_baseline.json so future regressions can't hide "
                f"in the headroom"
            )
    for name in sorted(set(current) - set(base_marks)):
        print(f"{name}: not in baseline (informational only)")
        rows.append(
            [name, "-", f"{current[name] / calibration:.1f}", "-", "new (no baseline)"]
        )
    return failures, rows


def write_step_summary(title: str, headers: list[str], rows: list[list[str]]) -> None:
    """Append a markdown table to the CI job's step summary, if any.

    ``$GITHUB_STEP_SUMMARY`` is the Actions-provided path; locally the
    variable is unset and this is a no-op, keeping stdout the single
    source of truth outside CI.
    """
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not summary_path or not rows:
        return
    lines = [
        f"### {title}",
        "",
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    lines.append("")
    with open(summary_path, "a") as handle:
        handle.write("\n".join(lines) + "\n")


def write_baseline(
    path: Path, current: dict[str, float], calibration: float
) -> None:
    document = {
        "format": 1,
        "calibration_seconds": calibration,
        "benchmarks": {name: current[name] for name in sorted(current)},
    }
    path.write_text(json.dumps(document, indent=2) + "\n")
    print(f"baseline written to {path}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--current",
        required=True,
        help="pytest-benchmark JSON from the fresh run",
    )
    parser.add_argument(
        "--baseline",
        default=str(DEFAULT_BASELINE),
        help="committed baseline (default: BENCH_baseline.json at repo root)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(
            os.environ.get("ECNUDP_BENCH_TOLERANCE", DEFAULT_TOLERANCE)
        ),
        help="max allowed slowdown factor (default 1.20 = +20%%)",
    )
    parser.add_argument(
        "--stale-tolerance",
        type=float,
        default=float(
            os.environ.get("ECNUDP_BENCH_STALE_TOLERANCE", DEFAULT_STALE_TOLERANCE)
        ),
        help=(
            "fail when a benchmark runs below this fraction of baseline "
            "without a ratchet (default 0.70 = 30%% faster)"
        ),
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline from the current run instead of gating",
    )
    args = parser.parse_args(argv)

    current = extract_benchmarks(json.loads(Path(args.current).read_text()))
    if not current:
        print("no benchmarks found in the current run", file=sys.stderr)
        return 2
    calibration = calibration_seconds()
    print(f"calibration: {calibration * 1000:.1f} ms/round on this machine")

    baseline_path = Path(args.baseline)
    if args.update:
        write_baseline(baseline_path, current, calibration)
        return 0
    if not baseline_path.exists():
        print(f"baseline {baseline_path} missing; run with --update", file=sys.stderr)
        return 2
    failures, rows = check(
        current,
        calibration,
        json.loads(baseline_path.read_text()),
        args.tolerance,
        args.stale_tolerance,
    )
    write_step_summary(
        "Benchmark regression gate "
        f"(budget x{args.tolerance:.2f}, stale below x{args.stale_tolerance:.2f})",
        ["benchmark", "baseline (units)", "current (units)", "ratio", "verdict"],
        rows,
    )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("benchmark gate: no regressions")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
