#!/usr/bin/env python3
"""Campaign crash-recovery gate: kill mid-epoch, resume, byte-compare.

The campaign driver's contract is that an interrupted-and-resumed
campaign converges on an archive **byte-identical** to an uninterrupted
run — at any epoch boundary or mid-epoch, sharded or not, chaos on or
off.  This script enforces it the honest way:

1. run ``ecnudp campaign run`` with ``ECNUDP_CAMPAIGN_KILL`` armed so
   the driver SIGKILLs *itself* mid-epoch (a real process death — no
   ``finally`` blocks, no atexit, no flushing);
2. assert the process actually died from SIGKILL;
3. ``ecnudp campaign resume`` to completion;
4. run an identical campaign uninterrupted in a second directory;
5. recursively byte-compare the two archives — every file, including
   ``campaign.json``, ``checkpoints.jsonl``, ``trend.json``,
   ``report.txt``, and the full per-epoch study archives.

Exit 0 when identical; exit 1 with a per-file diff listing otherwise.
The ``campaign-smoke`` CI lane runs this twice: plain, and with a chaos
profile layered on.
"""

from __future__ import annotations

import argparse
import filecmp
import os
import signal
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"


def run_cli(args: list[str], kill: str | None = None) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env.pop("ECNUDP_CAMPAIGN_KILL", None)
    if kill is not None:
        env["ECNUDP_CAMPAIGN_KILL"] = kill
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=env,
        capture_output=True,
        text=True,
    )


def compare_trees(left: Path, right: Path) -> list[str]:
    """Byte-compare two directory trees; returns human-readable diffs."""
    problems: list[str] = []

    def relative_files(root: Path) -> dict[str, Path]:
        return {
            p.relative_to(root).as_posix(): p
            for p in root.rglob("*")
            if p.is_file()
        }

    lhs, rhs = relative_files(left), relative_files(right)
    for name in sorted(set(lhs) - set(rhs)):
        problems.append(f"only in {left.name}: {name}")
    for name in sorted(set(rhs) - set(lhs)):
        problems.append(f"only in {right.name}: {name}")
    for name in sorted(set(lhs) & set(rhs)):
        if not filecmp.cmp(lhs[name], rhs[name], shallow=False):
            problems.append(f"differs: {name}")
    return problems


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=str, required=True,
                        help="scratch directory for the two campaign archives")
    parser.add_argument("--scale", type=float, default=0.02)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--epochs", type=int, default=3)
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes per epoch (resume runs "
                             "sequentially to also cross-check sharding)")
    parser.add_argument("--chaos", type=str, default=None,
                        help="layer a chaos profile over every epoch")
    parser.add_argument("--kill", type=str, default="1:partial",
                        metavar="EPOCH:PHASE",
                        help="self-kill point for the interrupted run "
                             "(default: mid-epoch-2, after the partial "
                             "save, before publication)")
    args = parser.parse_args()

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    interrupted = out / "interrupted"
    control = out / "uninterrupted"

    spec_args = [
        "--scale", str(args.scale),
        "--seed", str(args.seed),
        "--cadence", "3.5",
    ]
    if args.chaos:
        spec_args += ["--chaos", args.chaos]

    print(f"[1/4] campaign run with self-kill at {args.kill} "
          f"(workers={args.workers})")
    result = run_cli(
        ["campaign", "run", "--dir", str(interrupted),
         "--epochs", str(args.epochs), "--workers", str(args.workers),
         *spec_args],
        kill=args.kill,
    )
    if result.returncode != -signal.SIGKILL:
        print(f"FAIL: expected the driver to die from SIGKILL, got "
              f"returncode {result.returncode}")
        print(result.stdout)
        print(result.stderr, file=sys.stderr)
        return 1

    print("[2/4] campaign resume to completion (sequential)")
    result = run_cli(["campaign", "resume", "--dir", str(interrupted)])
    if result.returncode != 0:
        print(f"FAIL: resume exited {result.returncode}")
        print(result.stdout)
        print(result.stderr, file=sys.stderr)
        return 1

    print("[3/4] uninterrupted control campaign")
    result = run_cli(
        ["campaign", "run", "--dir", str(control),
         "--epochs", str(args.epochs), "--workers", str(args.workers),
         *spec_args],
    )
    if result.returncode != 0:
        print(f"FAIL: control run exited {result.returncode}")
        print(result.stdout)
        print(result.stderr, file=sys.stderr)
        return 1

    print("[4/4] byte-comparing the two archives")
    problems = compare_trees(interrupted, control)
    if problems:
        print(f"FAIL: archives differ in {len(problems)} place(s):")
        for problem in problems:
            print(f"  {problem}")
        return 1
    file_count = sum(1 for p in interrupted.rglob("*") if p.is_file())
    print(f"OK: interrupted+resumed archive is byte-identical to the "
          f"uninterrupted run ({file_count} files compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
