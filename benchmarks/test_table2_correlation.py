"""Experiment T2 — Table 2 / §4.4: UDP vs TCP failure correlation.

Regenerates the per-vantage table of servers unreachable via ECT(0)
UDP versus those also refusing TCP ECN, and asserts the paper's
conclusions: the correlation is weak (most ECT-UDP-blocked servers
negotiate ECN over TCP — middleboxes discriminate on payload
protocol) and McQuistin home dwarfs every other vantage.
"""

from repro.core.analysis.correlation import analyze_correlation
from repro.reporting.report import render_table2


def test_table2(benchmark, bench_study, bench_world):
    table = benchmark.pedantic(
        analyze_correlation, args=(bench_study,), rounds=3, iterations=1
    )
    print()
    print(render_table2(table))

    # Weak correlation: most ECT-UDP-unreachable servers still
    # negotiate ECN over TCP.
    assert table.overall_fraction_also_failing < 0.5

    # McQuistin home has by far the most ECT-UDP-unreachable servers
    # (paper: 160 vs ~10 elsewhere).
    mcquistin = table.row("mcquistin-home")
    others = [
        row.avg_udp_ect_unreachable
        for row in table.rows
        if row.vantage_key != "mcquistin-home"
    ]
    assert mcquistin.avg_udp_ect_unreachable > 2.5 * max(others)

    # Every other vantage sees a small, similar count (paper: 8-16).
    assert max(others) <= 4 * max(1.0, min(others))

    # The failure column is small but non-zero overall (paper: 2-5,
    # 20 for McQuistin).
    total_failing = sum(row.avg_fail_tcp_ecn for row in table.rows)
    assert total_failing > 0
    assert mcquistin.avg_fail_tcp_ecn >= max(
        row.avg_fail_tcp_ecn
        for row in table.rows
        if row.vantage_key != "mcquistin-home"
    )


def test_table2_majority_negotiate(bench_study):
    """§4.4: 'The majority of servers that cannot be reached using ECN
    with UDP can be reached using ECN with TCP.'"""
    table = analyze_correlation(bench_study)
    negotiating = sum(r.avg_negotiate_tcp_ecn * r.traces for r in table.rows)
    failing = sum(r.avg_fail_tcp_ecn * r.traces for r in table.rows)
    assert negotiating > failing
