"""Hot-path microbenchmarks: raw engine and forwarding throughput.

The figure/table benchmarks measure end-to-end study cost; these two
isolate the layers the hot-path overhaul targets, so the regression
gate catches a slow scheduler or packet path even when a study-level
number happens to absorb it:

* ``test_engine_events_per_second`` — schedule/cancel/dispatch churn
  through :class:`~repro.netsim.engine.EventScheduler`, the
  retransmission-timer pattern that dominates engine time in the TCP
  experiment.  Also times the same stream through
  :class:`~repro.netsim.engine.CalendarQueue` (informational) so the
  backend decision recorded in DESIGN.md §12 stays continuously
  re-validated.
* ``test_packets_forwarded_per_second`` — UDP datagrams across a
  six-router chain in FAST mode: router TTL decrement, link sampler,
  and delivery, with no TCP or study machinery on top.

Both print an absolute rate; the gate compares calibration-normalised
units via ``check_regression.py``.
"""

from repro.netsim.engine import CalendarQueue, Event, EventScheduler
from repro.netsim.host import Host
from repro.netsim.ipv4 import parse_addr
from repro.netsim.link import link_pair
from repro.netsim.network import FAST, Network
from repro.netsim.router import Router
from repro.netsim.topology import Topology

EVENTS = 50_000
PACKETS = 20_000
CHAIN_HOPS = 6


def _event_churn() -> int:
    """Schedule EVENTS events, cancel every third, drain the rest."""
    sched = EventScheduler()
    fired = 0

    def tick() -> None:
        nonlocal fired
        fired += 1

    for index in range(EVENTS):
        event = sched.schedule(0.001 * (index % 97), tick)
        if index % 3 == 0:
            event.cancel()
    sched.run()
    return fired


def _calendar_churn() -> int:
    """The same stream through the CalendarQueue evaluation backend."""
    queue = CalendarQueue()
    fired = 0
    for index in range(EVENTS):
        event = Event(0.001 * (index % 97), index, None, ())
        queue.push(event)
        if index % 3 == 0:
            event.cancelled = True
    while len(queue):
        if not queue.pop().cancelled:
            fired += 1
    return fired


def test_engine_events_per_second(benchmark):
    fired = benchmark(_event_churn)
    assert fired == EVENTS - (EVENTS + 2) // 3
    rate = EVENTS / benchmark.stats["mean"]
    print(f"\nengine: {rate:,.0f} scheduled events/s (heap backend)")
    # Informational head-to-head for the DESIGN.md §12 backend choice;
    # not gated (the calendar queue is not the production backend).
    import time

    t0 = time.perf_counter()
    _calendar_churn()
    calendar_s = time.perf_counter() - t0
    print(
        f"engine: {EVENTS / calendar_s:,.0f} events/s (calendar backend, "
        f"x{calendar_s / benchmark.stats['mean']:.1f} vs heap)"
    )


def _build_chain():
    topo = Topology()
    for index in range(CHAIN_HOPS):
        topo.add_router(
            Router(
                f"r{index}",
                asn=100 + index,
                interface_addr=parse_addr(f"10.0.{index}.1"),
            )
        )
        if index:
            forward, backward = link_pair(f"r{index - 1}", f"r{index}", delay=0.001)
            topo.add_link_pair(forward, backward)
    client = topo.add_host(Host("client", parse_addr("192.0.2.1"), "r0"))
    server = topo.add_host(
        Host("server", parse_addr("198.51.100.1"), f"r{CHAIN_HOPS - 1}")
    )
    return Network(topo, seed=20150401, mode=FAST), client, server


def test_packets_forwarded_per_second(benchmark):
    net, client, server = _build_chain()
    delivered = []
    server.udp_bind(123, lambda datagram, packet, rtt: delivered.append(rtt))
    socket = client.udp_bind(None)
    server_addr = server.addr

    def blast() -> None:
        for _ in range(PACKETS):
            socket.send(server_addr, 123, b"microbench-probe")
        net.scheduler.run()

    benchmark.pedantic(blast, rounds=1, iterations=1, warmup_rounds=1)
    assert len(delivered) >= PACKETS  # warmup + measured round
    hops_rate = PACKETS * (CHAIN_HOPS - 1) / benchmark.stats["mean"]
    print(
        f"\nforwarding: {PACKETS / benchmark.stats['mean']:,.0f} packets/s "
        f"end-to-end ({hops_rate:,.0f} router-hops/s, {CHAIN_HOPS} routers)"
    )
