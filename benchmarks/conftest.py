"""Shared fixtures for the benchmark harness.

Each ``test_*`` module regenerates one of the paper's tables or
figures.  The measured world and the completed study are built once
per session (they are inputs to several artefacts); each benchmark
then times the part specific to its artefact — the probe campaign or
analysis that produces it — and asserts the paper's *shape* on the
result (who wins, by roughly what factor; see EXPERIMENTS.md).

Scale: benchmarks run at 6 % of the paper's population (150 servers,
~26 traces) so the suite completes in a couple of minutes on a laptop while
preserving every calibrated rate.  Set ``ECNUDP_BENCH_SCALE`` to
override.
"""

from __future__ import annotations

import os

import pytest

from repro.core.measurement import MeasurementApplication
from repro.scenario.internet import SyntheticInternet
from repro.scenario.parameters import scaled_params

BENCH_SCALE = float(os.environ.get("ECNUDP_BENCH_SCALE", "0.06"))
BENCH_SEED = 20150401


@pytest.fixture(scope="session")
def bench_world() -> SyntheticInternet:
    """The calibrated synthetic Internet used by all benchmarks."""
    return SyntheticInternet(scaled_params(BENCH_SCALE, seed=BENCH_SEED))


@pytest.fixture(scope="session")
def bench_app(bench_world) -> MeasurementApplication:
    return MeasurementApplication(bench_world)


@pytest.fixture(scope="session")
def bench_study(bench_world, bench_app):
    """The full trace schedule, run once and shared."""
    return bench_app.run_study()


@pytest.fixture(scope="session")
def bench_campaign(bench_world, bench_app):
    """The full traceroute campaign, run once and shared."""
    return bench_app.run_traceroutes()
