"""Experiment F2 — Figure 2 and the §4.1 headline scalars.

Benchmarks one complete trace (the per-bar unit of Figure 2: all four
measurements against every server from one vantage) and regenerates
both panels from the full study, asserting the paper's shape:

* 2a: of not-ECT-reachable servers, a high but sub-100 % fraction is
  also ECT(0)-reachable (paper: 98.97 % average, always >90 %), with
  McQuistin home the visible outlier;
* 2b: the converse percentage is higher (paper: 99.45 %).
"""

from repro.core.analysis.reachability import analyze_reachability
from repro.reporting.report import render_figure2


def test_figure2_single_trace_generation(benchmark, bench_world, bench_app):
    """Time the per-bar unit of Figure 2: one full trace."""
    trace = benchmark.pedantic(
        bench_app.run_trace,
        args=("ec2-ireland", 9_000, 2),
        rounds=1,
        iterations=1,
    )
    assert len(trace.outcomes) == len(bench_world.servers)
    assert trace.count_udp_plain() > 0.8 * len(bench_world.servers)


def test_figure2_panels(benchmark, bench_study):
    summary = benchmark.pedantic(
        analyze_reachability, args=(bench_study,), rounds=3, iterations=1
    )
    print()
    print(render_figure2(summary))

    # Panel 2a shape (paper: avg 98.97 %, min >90 %).
    assert summary.avg_pct_ect_given_plain > 93.0
    assert summary.min_pct_ect_given_plain > 85.0
    # Panel 2b exceeds 2a (paper: 99.45 % > 98.97 %).
    assert summary.avg_pct_plain_given_ect > summary.avg_pct_ect_given_plain
    # The congested/ECT-hostile home vantage is the outlier.
    per_vantage = summary.vantage_avg_pct("a")
    assert min(per_vantage, key=per_vantage.get) == "mcquistin-home"


def test_headline_reachable_server_count(bench_study, bench_world):
    """§4.1: 'an average of 2253 servers from the set of 2500'."""
    summary = analyze_reachability(bench_study)
    fraction = summary.avg_udp_plain / len(bench_world.servers)
    assert 0.82 < fraction < 0.97  # paper: 2253/2500 = 0.90
    # Early batch reaches more servers than the later one (churn).
    per_batch = summary.batch_avg_reachable()
    assert per_batch[1] > per_batch[2]
