"""Extension experiment — TCP ECN *usability* (after Kühlewind et al.).

§5 of the paper: "Kühlewind et al. also test ECN usability with hosts
that negotiate ECN, by sending ECN-CE marked segments and checking
whether the returned ACK includes has the ECE flag set, showing
approximately 90% usability.  We do not perform such a test with TCP."

This bench performs exactly that missing test against the simulated
pool: for servers that negotiate ECN, send a CE-marked request segment
and check the ACKs echo ECE.  RFC 3168-compliant stacks all echo, so
usability among negotiators approaches 100 % here; the interesting
output is the end-to-end usability among *all* TCP-reachable servers,
which lands near Kühlewind's ~90 % of negotiators once the policy mix
is applied.
"""

from repro.core.probes import probe_tcp_ecn_usability
from repro.tcp.connection import ECNServerPolicy


def test_ecn_usability_sweep(benchmark, bench_world):
    world = bench_world
    world.enter_batch(1)
    host = world.vantage_hosts["ugla-wired"]
    offline = world.ground_truth.offline_batch1
    with_web = [
        s for s in world.servers if s.web is not None and s.addr not in offline
    ][:60]

    def sweep():
        outcomes = []
        for server in with_web:
            outcomes.append((server, probe_tcp_ecn_usability(host, server.addr)))
        return outcomes

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)

    negotiated = [(s, r) for s, r in outcomes if r.negotiated]
    usable = [(s, r) for s, r in negotiated if r.ece_echoed]
    print(
        f"\nTCP-reachable tested: {len(outcomes)}; negotiated ECN: "
        f"{len(negotiated)}; usable (ECE echoed): {len(usable)}"
    )

    # Usability among negotiators lands near Kühlewind's ~90 %: every
    # server stack is compliant, but paths crossing an ECT bleacher
    # lose the CE mark before the server can see it — usability
    # failures are a *path* property here, as Kühlewind et al. also
    # concluded.
    ratio = len(usable) / len(negotiated)
    assert 0.80 <= ratio <= 1.0

    # And indeed: every negotiated-but-unusable server sits in an AS
    # whose routers bleach.
    bleacher_asns = {
        world.topology.routers[r].asn
        for r in world.ground_truth.bleacher_routers
    }
    for server, result in negotiated:
        if not result.ece_echoed:
            assert server.asn in bleacher_asns

    # The negotiating share of web servers reflects the §4.3 mix.
    share = len(negotiated) / len(outcomes)
    assert 0.7 < share < 0.95

    # Non-negotiators never echo ECE.
    for server, result in outcomes:
        if not result.negotiated:
            assert not result.ece_echoed


def test_usability_consistent_with_policy(bench_world):
    world = bench_world
    world.enter_batch(1)
    host = world.vantage_hosts["ec2-frankfurt"]
    offline = world.ground_truth.offline_batch1
    by_policy = {}
    for server in world.servers:
        if server.web is None or server.addr in offline:
            continue
        by_policy.setdefault(server.web_policy, server)
    negotiator = by_policy.get(ECNServerPolicy.NEGOTIATE)
    ignorer = by_policy.get(ECNServerPolicy.IGNORE)
    assert negotiator is not None and ignorer is not None
    assert probe_tcp_ecn_usability(host, negotiator.addr).ece_echoed
    assert not probe_tcp_ecn_usability(host, ignorer.addr).ece_echoed
